// Binary encoding and message framing shared by the persistence formats
// (snapshot, WAL) and the service wire protocol.
//
//  * BinaryWriter / BinaryReader — little-endian, bounds-checked
//    primitives. Readers return Status instead of aborting, so a
//    truncated or corrupt input is always a recoverable error, never a
//    crash (the WAL-tail recovery contract depends on this).
//  * Frame — the length-prefixed unit of the service protocol:
//      u32 magic | u8 type | u32 payload_len | payload | u32 crc32(payload)
//    One request or response per frame. ReadFrame/WriteFrame speak the
//    format over a file descriptor (socket or pipe), handling partial
//    reads/writes and EINTR.
#ifndef DELTAREPAIR_COMMON_FRAMING_H_
#define DELTAREPAIR_COMMON_FRAMING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace deltarepair {

/// Append-only little-endian encoder over an owned buffer.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// LEB128: 7 value bits per byte, high bit = continuation. At most 10
  /// bytes; small magnitudes take one or two.
  void PutVarint64(uint64_t v);
  /// Zigzag-mapped varint, so small negative ints stay short too.
  void PutVarintI64(int64_t v) {
    PutVarint64((static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63));
  }
  /// IEEE-754 bit pattern; round-trips exactly.
  void PutDouble(double v);
  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s);
  /// Raw bytes, no length prefix (caller knows the size).
  void PutRaw(std::string_view s) { out_.append(s.data(), s.size()); }

  const std::string& str() const { return out_; }
  std::string&& Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer. Every
/// getter fails with InvalidArgument on underflow; no getter ever reads
/// past the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI64(int64_t* v);
  Status GetDouble(double* v);
  /// LEB128 varint; rejects encodings longer than 10 bytes.
  Status GetVarint64(uint64_t* v);
  /// Zigzag-mapped varint (inverse of PutVarintI64).
  Status GetVarintI64(int64_t* v) {
    uint64_t z;
    DR_RETURN_IF_ERROR(GetVarint64(&z));
    *v = static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
    return Status::OK();
  }
  /// u32 length prefix + bytes; rejects lengths beyond the remainder.
  Status GetString(std::string* v);
  /// Zero-copy view variant of GetString.
  Status GetStringView(std::string_view* v);
  /// Exactly `n` raw bytes.
  Status GetRaw(size_t n, std::string_view* v);

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

/// Wire-frame message kinds of the service protocol. Requests come from
/// clients; a server answers every request with exactly one kJson,
/// kText or kError frame.
enum class FrameType : uint8_t {
  kRepairRequest = 1,   // request_codec-encoded RepairRequest + program
  kCqaRequest = 2,      // request_codec-encoded CqaRequest + program
  kUpdateRequest = 3,   // insert/delete of one tuple (WAL-backed)
  kStatsRequest = 4,    // server/process counters
  kCompactRequest = 5,  // fold the WAL into a fresh snapshot
  kPingRequest = 6,     // liveness probe
  kSchemaRequest = 7,   // relation schemas (names, arities, cell types)
  kMetricsRequest = 8,  // Prometheus text exposition of the registry
  kTraceRequest = 9,    // Chrome trace_event JSON of the span rings
  kJson = 16,           // success: payload is a JSON report document
  kError = 17,          // failure: u32 StatusCode + string message
  kText = 18,           // success: payload is plain text (metrics scrape)
};

struct Frame {
  FrameType type = FrameType::kPingRequest;
  std::string payload;
};

/// Serializes one frame (magic, type, length, payload, crc).
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Decodes one frame from `data`, which must contain exactly one frame.
/// Rejects bad magic, unknown type values, length overruns and checksum
/// mismatches with InvalidArgument.
Status DecodeFrame(std::string_view data, Frame* out);

/// Writes one frame to `fd`, looping over partial writes. Returns
/// Internal on I/O failure (EPIPE on a dead peer included).
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// Reads one frame from `fd`. Returns NotFound on clean EOF before any
/// byte of a frame (peer closed between frames), InvalidArgument on a
/// malformed frame, Internal on I/O failure or mid-frame EOF. Frames
/// larger than `max_payload` are rejected without buffering them.
Status ReadFrame(int fd, Frame* out, size_t max_payload = 1u << 26);

/// Encodes an error-response frame payload (u32 code + message).
std::string EncodeErrorPayload(const Status& status);

/// Decodes an error-response frame payload back into a Status.
Status DecodeErrorPayload(std::string_view payload);

}  // namespace deltarepair

#endif  // DELTAREPAIR_COMMON_FRAMING_H_
