#include "relation/relation.h"

#include "common/status.h"

namespace deltarepair {

InsertResult Relation::Insert(Tuple t) {
  DR_CHECK_MSG(t.size() == schema_.arity(), "arity mismatch on insert");
  uint64_t h = HashTuple(t);
  auto it = dedupe_.find(h);
  if (it != dedupe_.end()) {
    for (uint32_t r : it->second) {
      if (rows_[r] == t) return InsertResult{r, false};
    }
  }
  uint32_t r = static_cast<uint32_t>(rows_.size());
  // Maintain any existing indexes incrementally.
  for (auto& [mask, index] : indexes_) {
    index[KeyHash(mask, t)].push_back(r);
  }
  rows_.push_back(std::move(t));
  live_.push_back(1);
  delta_.push_back(0);
  ++live_count_;
  dedupe_[h].push_back(r);
  return InsertResult{r, true};
}

int64_t Relation::FindRow(const Tuple& t) const {
  auto it = dedupe_.find(HashTuple(t));
  if (it == dedupe_.end()) return -1;
  for (uint32_t r : it->second) {
    if (rows_[r] == t) return r;
  }
  return -1;
}

void Relation::MarkDeleted(uint32_t r) {
  DR_CHECK(r < rows_.size());
  if (live_[r]) {
    live_[r] = 0;
    --live_count_;
  }
  if (!delta_[r]) {
    delta_[r] = 1;
    ++delta_count_;
  }
}

void Relation::SetDelta(uint32_t r) {
  DR_CHECK(r < rows_.size());
  if (!delta_[r]) {
    delta_[r] = 1;
    ++delta_count_;
  }
}

void Relation::UnmarkDeleted(uint32_t r) {
  DR_CHECK(r < rows_.size());
  if (!live_[r]) {
    live_[r] = 1;
    ++live_count_;
  }
  if (delta_[r]) {
    delta_[r] = 0;
    --delta_count_;
  }
}

void Relation::ResetState() {
  std::fill(live_.begin(), live_.end(), 1);
  std::fill(delta_.begin(), delta_.end(), 0);
  live_count_ = rows_.size();
  delta_count_ = 0;
}

uint64_t Relation::KeyHash(ColumnMask mask, const Tuple& t) const {
  uint64_t h = 0x6b657948ULL ^ Mix64(mask);
  for (size_t c = 0; c < t.size(); ++c) {
    if (mask & (1ULL << c)) h = HashCombine(h, t[c].Hash());
  }
  return h;
}

void Relation::EnsureIndex(ColumnMask mask) {
  if (indexes_.count(mask)) return;
  auto& index = indexes_[mask];
  index.reserve(rows_.size());
  for (uint32_t r = 0; r < rows_.size(); ++r) {
    index[KeyHash(mask, rows_[r])].push_back(r);
  }
}

const std::vector<uint32_t>* Relation::Probe(ColumnMask mask,
                                             const Tuple& full_binding) const {
  auto iit = indexes_.find(mask);
  DR_CHECK_MSG(iit != indexes_.end(), "Probe before EnsureIndex");
  auto it = iit->second.find(KeyHash(mask, full_binding));
  if (it == iit->second.end()) return nullptr;
  return &it->second;
}

Relation::State Relation::SaveState() const {
  return State{live_, delta_, live_count_, delta_count_};
}

void Relation::RestoreState(const State& s) {
  DR_CHECK(s.live.size() == rows_.size());
  live_ = s.live;
  delta_ = s.delta;
  live_count_ = s.live_count;
  delta_count_ = s.delta_count;
}

std::string Relation::ToString() const {
  std::string out = schema_.ToString() + " {";
  bool first = true;
  for (uint32_t r = 0; r < rows_.size(); ++r) {
    if (!live_[r]) continue;
    if (!first) out += ", ";
    first = false;
    out += TupleToString(rows_[r]);
  }
  out += "}";
  return out;
}

}  // namespace deltarepair
