#include "relation/relation.h"

#include "common/status.h"

namespace deltarepair {

Relation::Relation(const Relation& other)
    : schema_(other.schema_),
      rows_(other.rows_),
      dedupe_(other.dedupe_),
      indexes_(other.indexes_) {}

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    schema_ = other.schema_;
    rows_ = other.rows_;
    dedupe_ = other.dedupe_;
    indexes_ = other.indexes_;
  }
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : schema_(std::move(other.schema_)),
      rows_(std::move(other.rows_)),
      dedupe_(std::move(other.dedupe_)),
      indexes_(std::move(other.indexes_)) {}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this != &other) {
    schema_ = std::move(other.schema_);
    rows_ = std::move(other.rows_);
    dedupe_ = std::move(other.dedupe_);
    indexes_ = std::move(other.indexes_);
  }
  return *this;
}

InsertResult Relation::InternRow(Tuple t) {
  DR_CHECK_MSG(t.size() == schema_.arity(), "arity mismatch on insert");
  uint64_t h = HashTuple(t);
  auto it = dedupe_.find(h);
  if (it != dedupe_.end()) {
    for (uint32_t r : it->second) {
      if (rows_[r] == t) return InsertResult{r, false};
    }
  }
  uint32_t r = static_cast<uint32_t>(rows_.size());
  // Maintain any existing indexes incrementally.
  for (auto& [mask, index] : indexes_) {
    index[KeyHash(mask, t)].push_back(r);
  }
  rows_.push_back(std::move(t));
  dedupe_[h].push_back(r);
  return InsertResult{r, true};
}

int64_t Relation::FindRow(const Tuple& t) const {
  auto it = dedupe_.find(HashTuple(t));
  if (it == dedupe_.end()) return -1;
  for (uint32_t r : it->second) {
    if (rows_[r] == t) return r;
  }
  return -1;
}

uint64_t Relation::KeyHash(ColumnMask mask, const Tuple& t) const {
  uint64_t h = 0x6b657948ULL ^ Mix64(mask);
  for (size_t c = 0; c < t.size(); ++c) {
    if (mask & (1ULL << c)) h = HashCombine(h, t[c].Hash());
  }
  return h;
}

const Relation::Index* Relation::EnsureIndex(ColumnMask mask) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = indexes_.find(mask);
  if (it != indexes_.end()) return &it->second;
  Index& index = indexes_[mask];
  index.reserve(rows_.size());
  for (uint32_t r = 0; r < rows_.size(); ++r) {
    index[KeyHash(mask, rows_[r])].push_back(r);
  }
  return &index;
}

const std::vector<uint32_t>* Relation::Probe(
    const Index* index, ColumnMask mask, const Tuple& full_binding) const {
  DR_CHECK_MSG(index != nullptr, "Probe before EnsureIndex");
  auto it = index->find(KeyHash(mask, full_binding));
  if (it == index->end()) return nullptr;
  return &it->second;
}

const std::vector<uint32_t>* Relation::Probe(
    ColumnMask mask, const Tuple& full_binding) const {
  const Index* index = nullptr;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    auto it = indexes_.find(mask);
    DR_CHECK_MSG(it != indexes_.end(), "Probe before EnsureIndex");
    index = &it->second;
  }
  return Probe(index, mask, full_binding);
}

std::string Relation::ToString() const {
  std::string out = schema_.ToString() + " {";
  for (uint32_t r = 0; r < rows_.size(); ++r) {
    if (r) out += ", ";
    out += TupleToString(rows_[r]);
  }
  out += "}";
  return out;
}

}  // namespace deltarepair
