#include "relation/relation.h"

#include "common/status.h"

namespace deltarepair {

namespace {

/// Slot index for `h` in a power-of-two table. HashTuple output is
/// already well mixed, so the low bits are usable directly.
inline size_t SlotFor(uint64_t h, size_t num_slots) {
  return static_cast<size_t>(h) & (num_slots - 1);
}

/// Hash 0 is the empty-slot marker; nudge real hashes off it. The rare
/// 0/1 collision this introduces is harmless — chain walkers always
/// verify tuple equality.
inline uint64_t NormHash(uint64_t h) { return h == 0 ? 1 : h; }

}  // namespace

void DedupeTable::Reserve(size_t n) {
  size_t want = 16;
  while (want < n * 2) want <<= 1;  // keep load factor under 1/2
  if (want > slot_hash_.size()) Grow(want);
  if (n > next_.size()) next_.reserve(n);
}

uint32_t DedupeTable::Head(uint64_t h) const {
  if (slot_hash_.empty()) return kNone;
  const uint64_t hn = NormHash(h);
  size_t i = SlotFor(hn, slot_hash_.size());
  while (slot_hash_[i] != 0) {
    if (slot_hash_[i] == hn) return slot_head_[i];
    i = (i + 1) & (slot_hash_.size() - 1);
  }
  return kNone;
}

void DedupeTable::Add(uint64_t h, uint32_t r) {
  if (slot_hash_.empty() || (size_ + 1) * 2 > slot_hash_.size()) {
    Grow(slot_hash_.empty() ? 16 : slot_hash_.size() * 2);
  }
  if (r >= next_.size()) next_.resize(r + 1, kNone);
  const uint64_t hn = NormHash(h);
  size_t i = SlotFor(hn, slot_hash_.size());
  while (slot_hash_[i] != 0) {
    if (slot_hash_[i] == hn) {
      // Same full-tuple hash: chain the new row in front.
      next_[r] = slot_head_[i];
      slot_head_[i] = r;
      return;
    }
    i = (i + 1) & (slot_hash_.size() - 1);
  }
  slot_hash_[i] = hn;
  slot_head_[i] = r;
  next_[r] = kNone;
  ++size_;
}

template <typename GetHash>
void DedupeTable::BuildImpl(GetHash&& get_hash, uint32_t n) {
  slot_hash_.clear();
  slot_head_.clear();
  next_.clear();
  size_ = 0;
  Reserve(n);
  next_.assign(n, kNone);
  const size_t mask = slot_hash_.size() - 1;
  for (uint32_t r = 0; r < n; ++r) {
    const uint64_t hn = NormHash(get_hash(r));
    size_t i = static_cast<size_t>(hn) & mask;
    for (;;) {
      if (slot_hash_[i] == 0) {
        slot_hash_[i] = hn;
        slot_head_[i] = r;
        ++size_;
        break;
      }
      if (slot_hash_[i] == hn) {
        next_[r] = slot_head_[i];
        slot_head_[i] = r;
        break;
      }
      i = (i + 1) & mask;
    }
  }
}

void DedupeTable::BuildFrom(const uint64_t* hashes, uint32_t n) {
  BuildImpl([hashes](uint32_t r) { return hashes[r]; }, n);
}

void DedupeTable::BuildFromLe(const unsigned char* le_hashes, uint32_t n) {
  BuildImpl(
      [le_hashes](uint32_t r) {
        const unsigned char* p = le_hashes + r * 8;
        uint64_t h = 0;
        for (int i = 0; i < 8; ++i) {
          h |= static_cast<uint64_t>(p[i]) << (8 * i);
        }
        return h;
      },
      n);
}

void DedupeTable::Grow(size_t min_slots) {
  std::vector<uint64_t> old_hash = std::move(slot_hash_);
  std::vector<uint32_t> old_head = std::move(slot_head_);
  slot_hash_.assign(min_slots, 0);
  slot_head_.assign(min_slots, kNone);
  for (size_t s = 0; s < old_hash.size(); ++s) {
    if (old_hash[s] == 0) continue;
    size_t i = SlotFor(old_hash[s], slot_hash_.size());
    while (slot_hash_[i] != 0) i = (i + 1) & (slot_hash_.size() - 1);
    slot_hash_[i] = old_hash[s];
    slot_head_[i] = old_head[s];
  }
}

Relation::Relation(const Relation& other)
    : schema_(other.schema_),
      rows_(other.rows_),
      dedupe_(other.dedupe_),
      indexes_(other.indexes_) {}

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    schema_ = other.schema_;
    rows_ = other.rows_;
    dedupe_ = other.dedupe_;
    indexes_ = other.indexes_;
  }
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : schema_(std::move(other.schema_)),
      rows_(std::move(other.rows_)),
      dedupe_(std::move(other.dedupe_)),
      indexes_(std::move(other.indexes_)) {}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this != &other) {
    schema_ = std::move(other.schema_);
    rows_ = std::move(other.rows_);
    dedupe_ = std::move(other.dedupe_);
    indexes_ = std::move(other.indexes_);
  }
  return *this;
}

InsertResult Relation::InternRow(Tuple t) {
  DR_CHECK_MSG(t.size() == schema_.arity(), "arity mismatch on insert");
  uint64_t h = HashTuple(t);
  for (uint32_t r = dedupe_.Head(h); r != DedupeTable::kNone;
       r = dedupe_.Next(r)) {
    if (rows_[r] == t) return InsertResult{r, false};
  }
  uint32_t r = static_cast<uint32_t>(rows_.size());
  // Maintain any existing indexes incrementally.
  for (auto& [mask, index] : indexes_) {
    index[KeyHash(mask, t)].push_back(r);
  }
  rows_.push_back(std::move(t));
  dedupe_.Add(h, r);
  return InsertResult{r, true};
}

void Relation::BulkLoadRows(std::vector<Tuple> rows, DedupeTable dedupe) {
  DR_CHECK_MSG(rows_.empty() && dedupe_.empty() && indexes_.empty(),
               "BulkLoadRows on non-empty relation");
  DR_CHECK_MSG(rows.size() == dedupe.num_rows(),
               "BulkLoadRows dedupe table size mismatch");
  for (const Tuple& t : rows) {
    DR_CHECK_MSG(t.size() == schema_.arity(), "arity mismatch on bulk load");
  }
  rows_ = std::move(rows);
  dedupe_ = std::move(dedupe);
}

int64_t Relation::FindRow(const Tuple& t) const {
  uint64_t h = HashTuple(t);
  for (uint32_t r = dedupe_.Head(h); r != DedupeTable::kNone;
       r = dedupe_.Next(r)) {
    if (rows_[r] == t) return r;
  }
  return -1;
}

uint64_t Relation::KeyHash(ColumnMask mask, const Tuple& t) const {
  uint64_t h = 0x6b657948ULL ^ Mix64(mask);
  for (size_t c = 0; c < t.size(); ++c) {
    if (mask & (1ULL << c)) h = HashCombine(h, t[c].Hash());
  }
  return h;
}

const Relation::Index* Relation::EnsureIndex(ColumnMask mask) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = indexes_.find(mask);
  if (it != indexes_.end()) return &it->second;
  Index& index = indexes_[mask];
  index.reserve(rows_.size());
  for (uint32_t r = 0; r < rows_.size(); ++r) {
    index[KeyHash(mask, rows_[r])].push_back(r);
  }
  return &index;
}

const std::vector<uint32_t>* Relation::Probe(
    const Index* index, ColumnMask mask, const Tuple& full_binding) const {
  DR_CHECK_MSG(index != nullptr, "Probe before EnsureIndex");
  auto it = index->find(KeyHash(mask, full_binding));
  if (it == index->end()) return nullptr;
  return &it->second;
}

const std::vector<uint32_t>* Relation::Probe(
    ColumnMask mask, const Tuple& full_binding) const {
  const Index* index = nullptr;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    auto it = indexes_.find(mask);
    DR_CHECK_MSG(it != indexes_.end(), "Probe before EnsureIndex");
    index = &it->second;
  }
  return Probe(index, mask, full_binding);
}

std::string Relation::ToString() const {
  std::string out = schema_.ToString() + " {";
  for (uint32_t r = 0; r < rows_.size(); ++r) {
    if (r) out += ", ";
    out += TupleToString(rows_[r]);
  }
  out += "}";
  return out;
}

}  // namespace deltarepair
