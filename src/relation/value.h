// Value: a typed scalar (null / int64 / string) — the cell type of the
// relational engine. Total order across types (type tag first) so Values
// are usable as index keys; comparison predicates in delta rules use the
// same ordering within a type.
#ifndef DELTAREPAIR_RELATION_VALUE_H_
#define DELTAREPAIR_RELATION_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace deltarepair {

enum class ValueType : uint8_t { kNull = 0, kInt = 1, kString = 2 };

/// Immutable scalar cell value.
class Value {
 public:
  Value() : type_(ValueType::kNull), int_(0) {}
  explicit Value(int64_t v) : type_(ValueType::kInt), int_(v) {}
  explicit Value(std::string v)
      : type_(ValueType::kString), int_(0), str_(std::move(v)) {}
  explicit Value(const char* v) : Value(std::string(v)) {}

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_int() const { return type_ == ValueType::kInt; }
  bool is_string() const { return type_ == ValueType::kString; }

  /// Integer payload; only valid when is_int().
  int64_t AsInt() const;
  /// String payload; only valid when is_string().
  const std::string& AsString() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Total order: null < int < string; within type, natural order.
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  /// Stable 64-bit hash (used by tuple hashing and index keys).
  uint64_t Hash() const;

  /// Rendering: ints bare, strings single-quoted, null as "null".
  std::string ToString() const;

 private:
  ValueType type_;
  int64_t int_;
  std::string str_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_RELATION_VALUE_H_
