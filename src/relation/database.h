// Database: shared relation storage plus the canonical instance state.
// The database instance D of the paper is the set of live tuples; ∆(S) is
// tracked through per-row delta flags. Storage (rows, schema, dedupe,
// indexes — see relation/relation.h) is owned here and shared read-only
// by any number of InstanceViews; the Database keeps one distinguished
// `base_view()` holding the canonical live/delta state, and every legacy
// entry point (Insert/MarkDeleted/SaveState/...) delegates to it.
// Concurrent repair runs take per-thread copies via SnapshotView().
#ifndef DELTAREPAIR_RELATION_DATABASE_H_
#define DELTAREPAIR_RELATION_DATABASE_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/delta.h"
#include "relation/instance_view.h"
#include "relation/relation.h"

namespace deltarepair {

class Database {
 public:
  Database() = default;

  // Copies rebind the base view onto the new owner; independent
  // InstanceViews created from the source keep pointing at the source.
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  /// Registers a relation; returns its index. Names must be unique.
  uint32_t AddRelation(RelationSchema schema);

  /// Index of the relation named `name`, or -1.
  int RelationIndex(const std::string& name) const;

  size_t num_relations() const { return relations_.size(); }
  const Relation& relation(uint32_t i) const { return relations_[i]; }
  /// Storage-mutating access (loading phase; see Relation's thread model).
  Relation& mutable_relation(uint32_t i) { return relations_[i]; }

  const Relation* FindRelation(const std::string& name) const;

  /// The canonical instance state every legacy entry point operates on.
  InstanceView& base_view() { return base_; }
  const InstanceView& base_view() const { return base_; }

  /// A per-run copy of the canonical state, sharing this database's
  /// storage. The backbone of parallel batch execution.
  InstanceView SnapshotView() { return base_; }

  /// Monotonically increasing instance version. Bumped by every
  /// ApplyUpdate whose realized delta is non-empty; repair-internal
  /// membership flips (MarkDeleted/SetDelta, SaveState/RestoreState) do
  /// not touch it. Version 0 is the loading phase — direct Insert calls
  /// during initial population are not versioned.
  uint64_t version() const { return version_; }

  /// Applies one external update batch (all inserts or all deletes) to
  /// the canonical state and returns the *realized* delta: inserts that
  /// were already live and deletes of absent tuples are excluded. A
  /// non-empty delta bumps the version and is recorded in the bounded
  /// delta history; an empty one leaves the version unchanged.
  Delta ApplyUpdate(uint32_t rel, bool is_insert,
                    const std::vector<Tuple>& tuples);

  /// Fills `out` with the merged realized delta covering
  /// (from_version, version()]. Returns false when `from_version` is in
  /// the future or has aged out of the bounded history — the caller must
  /// fall back to a cold rebuild. An up-to-date caller gets an empty
  /// delta and true.
  bool DeltaSince(uint64_t from_version, Delta* out) const;

  /// Realized deltas retained for DeltaSince. Older warm state goes cold.
  static constexpr size_t kMaxDeltaHistory = 256;

  /// Inserts a live tuple into relation `rel`. A dedupe hit on a deleted
  /// row revives it (see InstanceView::Insert).
  TupleId Insert(uint32_t rel, Tuple t);
  /// Inserts by relation name (must exist).
  TupleId Insert(const std::string& rel, Tuple t);
  /// Insert that also reports whether a new row slot was created.
  InsertResult InsertChecked(uint32_t rel, Tuple t);

  const Tuple& tuple(TupleId id) const {
    return relations_[id.relation].row(id.row);
  }
  bool live(TupleId id) const { return base_.live(id); }
  bool delta(TupleId id) const { return base_.delta(id); }
  void MarkDeleted(TupleId id) { base_.MarkDeleted(id); }
  void SetDelta(TupleId id) { base_.SetDelta(id); }
  void UnmarkDeleted(TupleId id) { base_.UnmarkDeleted(id); }

  /// Total live tuples across relations (the size of D).
  size_t TotalLive() const { return base_.TotalLive(); }
  /// Total row slots across relations (storage, live or not).
  size_t TotalRows() const;
  /// Total delta tuples across relations.
  size_t TotalDelta() const { return base_.TotalDelta(); }
  /// Live tuples in one relation.
  size_t live_count(uint32_t rel) const {
    return base_.rel(rel).live_count();
  }

  /// All live tuple ids (deterministic order: relation-major).
  std::vector<TupleId> LiveTupleIds() const { return base_.LiveTupleIds(); }
  /// All tuple ids currently in delta relations.
  std::vector<TupleId> DeltaTupleIds() const {
    return base_.DeltaTupleIds();
  }

  /// Restores the canonical state to everything-live, deltas empty.
  void ResetState() { base_.ResetAllLive(); }

  /// Whole-database (live, delta) snapshot of the canonical state.
  using State = InstanceView::State;
  State SaveState() const { return base_.SaveState(); }
  void RestoreState(const State& s) { base_.RestoreState(s); }

  /// Renders tuple `id` as "Rel(v1, v2)".
  std::string TupleToStr(TupleId id) const;

  /// Debug rendering of the canonical state (small databases).
  std::string ToString() const { return base_.ToString(); }

 private:
  std::vector<Relation> relations_;
  std::unordered_map<std::string, uint32_t> by_name_;
  InstanceView base_;
  uint64_t version_ = 0;
  // Consecutive realized deltas; history_[i].to_version ==
  // history_[i+1].from_version, back() ends at version_.
  std::deque<Delta> history_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_RELATION_DATABASE_H_
