// Database: a set of relations plus their delta relations (Sec. 3.1).
// The database instance D of the paper is the set of live tuples; ∆(S) is
// tracked through per-row delta flags. Copy/Save/Restore support running
// several repair semantics against the same instance.
#ifndef DELTAREPAIR_RELATION_DATABASE_H_
#define DELTAREPAIR_RELATION_DATABASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "relation/relation.h"

namespace deltarepair {

class Database {
 public:
  Database() = default;

  /// Registers a relation; returns its index. Names must be unique.
  uint32_t AddRelation(RelationSchema schema);

  /// Index of the relation named `name`, or -1.
  int RelationIndex(const std::string& name) const;

  size_t num_relations() const { return relations_.size(); }
  Relation& relation(uint32_t i) { return relations_[i]; }
  const Relation& relation(uint32_t i) const { return relations_[i]; }

  Relation* FindRelation(const std::string& name);
  const Relation* FindRelation(const std::string& name) const;

  /// Inserts a live tuple into relation `rel`.
  TupleId Insert(uint32_t rel, Tuple t);
  /// Inserts by relation name (must exist).
  TupleId Insert(const std::string& rel, Tuple t);

  const Tuple& tuple(TupleId id) const {
    return relations_[id.relation].row(id.row);
  }
  bool live(TupleId id) const { return relations_[id.relation].live(id.row); }
  bool delta(TupleId id) const {
    return relations_[id.relation].delta(id.row);
  }
  void MarkDeleted(TupleId id) { relations_[id.relation].MarkDeleted(id.row); }
  void SetDelta(TupleId id) { relations_[id.relation].SetDelta(id.row); }

  /// Total live tuples across relations (the size of D).
  size_t TotalLive() const;
  /// Total row slots across relations.
  size_t TotalRows() const;
  /// Total delta tuples across relations.
  size_t TotalDelta() const;

  /// All live tuple ids (deterministic order: relation-major).
  std::vector<TupleId> LiveTupleIds() const;
  /// All tuple ids currently in delta relations.
  std::vector<TupleId> DeltaTupleIds() const;

  /// Restores every relation to its load-time state.
  void ResetState();

  /// Whole-database (live, delta) snapshot.
  using State = std::vector<Relation::State>;
  State SaveState() const;
  void RestoreState(const State& s);

  /// Renders tuple `id` as "Rel(v1, v2)".
  std::string TupleToStr(TupleId id) const;

  /// Debug rendering (small databases).
  std::string ToString() const;

 private:
  std::vector<Relation> relations_;
  std::unordered_map<std::string, uint32_t> by_name_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_RELATION_DATABASE_H_
