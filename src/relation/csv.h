// Minimal typed CSV import/export for the relational engine, used by the
// drepair CLI. Format: the first line is the schema ("aid:int,name:str"),
// each following line one tuple. Values containing commas are not
// supported (this is a data-exchange convenience, not a CSV library).
#ifndef DELTAREPAIR_RELATION_CSV_H_
#define DELTAREPAIR_RELATION_CSV_H_

#include <string>

#include "common/status.h"
#include "relation/database.h"

namespace deltarepair {

/// Parses CSV text into a relation named `relation_name` added to `db`.
Status LoadCsvIntoDatabase(Database* db, const std::string& relation_name,
                           const std::string& csv_text);

/// Reads `path` into `db`; the relation is named after the file's
/// basename without extension.
Status LoadCsvFile(Database* db, const std::string& path);

/// Renders the live tuples (canonical state) of relation `rel` back to
/// CSV (schema line first).
std::string RelationToCsv(const Database& db, uint32_t rel);

}  // namespace deltarepair

#endif  // DELTAREPAIR_RELATION_CSV_H_
