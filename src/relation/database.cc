#include "relation/database.h"

#include "common/status.h"

namespace deltarepair {

Database::Database(const Database& other)
    : relations_(other.relations_),
      by_name_(other.by_name_),
      base_(other.base_) {
  base_.db_ = this;
}

Database& Database::operator=(const Database& other) {
  if (this != &other) {
    relations_ = other.relations_;
    by_name_ = other.by_name_;
    base_ = other.base_;
    base_.db_ = this;
  }
  return *this;
}

Database::Database(Database&& other) noexcept
    : relations_(std::move(other.relations_)),
      by_name_(std::move(other.by_name_)),
      base_(std::move(other.base_)) {
  base_.db_ = this;
}

Database& Database::operator=(Database&& other) noexcept {
  if (this != &other) {
    relations_ = std::move(other.relations_);
    by_name_ = std::move(other.by_name_);
    base_ = std::move(other.base_);
    base_.db_ = this;
  }
  return *this;
}

uint32_t Database::AddRelation(RelationSchema schema) {
  DR_CHECK_MSG(!by_name_.count(schema.name()), "duplicate relation name");
  uint32_t idx = static_cast<uint32_t>(relations_.size());
  by_name_[schema.name()] = idx;
  relations_.emplace_back(std::move(schema));
  base_.db_ = this;
  base_.rels_.emplace_back(size_t{0});
  return idx;
}

int Database::RelationIndex(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : static_cast<int>(it->second);
}

const Relation* Database::FindRelation(const std::string& name) const {
  int i = RelationIndex(name);
  return i < 0 ? nullptr : &relations_[i];
}

TupleId Database::Insert(uint32_t rel, Tuple t) {
  InsertResult r = InsertChecked(rel, std::move(t));
  return TupleId{rel, r.row};
}

TupleId Database::Insert(const std::string& rel, Tuple t) {
  int i = RelationIndex(rel);
  DR_CHECK_MSG(i >= 0, "unknown relation: " + rel);
  return Insert(static_cast<uint32_t>(i), std::move(t));
}

InsertResult Database::InsertChecked(uint32_t rel, Tuple t) {
  DR_CHECK(rel < relations_.size());
  return base_.Insert(rel, std::move(t));
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& r : relations_) n += r.num_rows();
  return n;
}

std::string Database::TupleToStr(TupleId id) const {
  return relations_[id.relation].name() + TupleToString(tuple(id));
}

}  // namespace deltarepair
