#include "relation/database.h"

#include "common/status.h"

namespace deltarepair {

uint32_t Database::AddRelation(RelationSchema schema) {
  DR_CHECK_MSG(!by_name_.count(schema.name()), "duplicate relation name");
  uint32_t idx = static_cast<uint32_t>(relations_.size());
  by_name_[schema.name()] = idx;
  relations_.emplace_back(std::move(schema));
  return idx;
}

int Database::RelationIndex(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : static_cast<int>(it->second);
}

Relation* Database::FindRelation(const std::string& name) {
  int i = RelationIndex(name);
  return i < 0 ? nullptr : &relations_[i];
}

const Relation* Database::FindRelation(const std::string& name) const {
  int i = RelationIndex(name);
  return i < 0 ? nullptr : &relations_[i];
}

TupleId Database::Insert(uint32_t rel, Tuple t) {
  DR_CHECK(rel < relations_.size());
  InsertResult r = relations_[rel].Insert(std::move(t));
  return TupleId{rel, r.row};
}

TupleId Database::Insert(const std::string& rel, Tuple t) {
  int i = RelationIndex(rel);
  DR_CHECK_MSG(i >= 0, "unknown relation: " + rel);
  return Insert(static_cast<uint32_t>(i), std::move(t));
}

size_t Database::TotalLive() const {
  size_t n = 0;
  for (const auto& r : relations_) n += r.live_count();
  return n;
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& r : relations_) n += r.num_rows();
  return n;
}

size_t Database::TotalDelta() const {
  size_t n = 0;
  for (const auto& r : relations_) n += r.delta_count();
  return n;
}

std::vector<TupleId> Database::LiveTupleIds() const {
  std::vector<TupleId> out;
  out.reserve(TotalLive());
  for (uint32_t i = 0; i < relations_.size(); ++i) {
    for (uint32_t r = 0; r < relations_[i].num_rows(); ++r) {
      if (relations_[i].live(r)) out.push_back(TupleId{i, r});
    }
  }
  return out;
}

std::vector<TupleId> Database::DeltaTupleIds() const {
  std::vector<TupleId> out;
  for (uint32_t i = 0; i < relations_.size(); ++i) {
    for (uint32_t r = 0; r < relations_[i].num_rows(); ++r) {
      if (relations_[i].delta(r)) out.push_back(TupleId{i, r});
    }
  }
  return out;
}

void Database::ResetState() {
  for (auto& r : relations_) r.ResetState();
}

Database::State Database::SaveState() const {
  State s;
  s.reserve(relations_.size());
  for (const auto& r : relations_) s.push_back(r.SaveState());
  return s;
}

void Database::RestoreState(const State& s) {
  DR_CHECK(s.size() == relations_.size());
  for (size_t i = 0; i < relations_.size(); ++i) {
    relations_[i].RestoreState(s[i]);
  }
}

std::string Database::TupleToStr(TupleId id) const {
  return relations_[id.relation].name() + TupleToString(tuple(id));
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& r : relations_) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace deltarepair
