#include "relation/database.h"

#include "common/status.h"

namespace deltarepair {

Database::Database(const Database& other)
    : relations_(other.relations_),
      by_name_(other.by_name_),
      base_(other.base_),
      version_(other.version_),
      history_(other.history_) {
  base_.db_ = this;
}

Database& Database::operator=(const Database& other) {
  if (this != &other) {
    relations_ = other.relations_;
    by_name_ = other.by_name_;
    base_ = other.base_;
    version_ = other.version_;
    history_ = other.history_;
    base_.db_ = this;
  }
  return *this;
}

Database::Database(Database&& other) noexcept
    : relations_(std::move(other.relations_)),
      by_name_(std::move(other.by_name_)),
      base_(std::move(other.base_)),
      version_(other.version_),
      history_(std::move(other.history_)) {
  base_.db_ = this;
}

Database& Database::operator=(Database&& other) noexcept {
  if (this != &other) {
    relations_ = std::move(other.relations_);
    by_name_ = std::move(other.by_name_);
    base_ = std::move(other.base_);
    version_ = other.version_;
    history_ = std::move(other.history_);
    base_.db_ = this;
  }
  return *this;
}

uint32_t Database::AddRelation(RelationSchema schema) {
  DR_CHECK_MSG(!by_name_.count(schema.name()), "duplicate relation name");
  uint32_t idx = static_cast<uint32_t>(relations_.size());
  by_name_[schema.name()] = idx;
  relations_.emplace_back(std::move(schema));
  base_.db_ = this;
  base_.rels_.emplace_back(size_t{0});
  return idx;
}

int Database::RelationIndex(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : static_cast<int>(it->second);
}

const Relation* Database::FindRelation(const std::string& name) const {
  int i = RelationIndex(name);
  return i < 0 ? nullptr : &relations_[i];
}

TupleId Database::Insert(uint32_t rel, Tuple t) {
  InsertResult r = InsertChecked(rel, std::move(t));
  return TupleId{rel, r.row};
}

TupleId Database::Insert(const std::string& rel, Tuple t) {
  int i = RelationIndex(rel);
  DR_CHECK_MSG(i >= 0, "unknown relation: " + rel);
  return Insert(static_cast<uint32_t>(i), std::move(t));
}

InsertResult Database::InsertChecked(uint32_t rel, Tuple t) {
  DR_CHECK(rel < relations_.size());
  return base_.Insert(rel, std::move(t));
}

Delta Database::ApplyUpdate(uint32_t rel, bool is_insert,
                            const std::vector<Tuple>& tuples) {
  DR_CHECK(rel < relations_.size());
  Delta d;
  d.from_version = version_;
  d.to_version = version_;
  d.rels.resize(relations_.size());
  for (const Tuple& t : tuples) {
    if (is_insert) {
      InsertResult r = relations_[rel].InternRow(Tuple(t));
      // Realized only when the row was not live before (new slot or a
      // revival of a retracted/deleted row).
      if (base_.rel(rel).AdoptLive(r.row)) d.rels[rel].inserted.push_back(r.row);
    } else {
      int64_t row = relations_[rel].FindRow(t);
      if (row < 0) continue;
      TupleId id{rel, static_cast<uint32_t>(row)};
      if (!base_.live(id)) continue;
      base_.Retract(id);
      d.rels[rel].deleted.push_back(id.row);
    }
  }
  if (!d.empty()) {
    d.to_version = ++version_;
    history_.push_back(d);
    if (history_.size() > kMaxDeltaHistory) history_.pop_front();
  }
  return d;
}

bool Database::DeltaSince(uint64_t from_version, Delta* out) const {
  out->rels.assign(relations_.size(), Delta::RelationDelta{});
  out->from_version = from_version;
  out->to_version = version_;
  if (from_version == version_) return true;
  if (from_version > version_) return false;
  size_t i = 0;
  while (i < history_.size() && history_[i].from_version < from_version) ++i;
  if (i == history_.size() || history_[i].from_version != from_version)
    return false;  // aged out of the bounded history
  *out = history_[i];
  for (++i; i < history_.size(); ++i) out->MergeFrom(history_[i]);
  return true;
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& r : relations_) n += r.num_rows();
  return n;
}

std::string Database::TupleToStr(TupleId id) const {
  return relations_[id.relation].name() + TupleToString(tuple(id));
}

}  // namespace deltarepair
