// Relation: the immutable storage core of a relation — an append-only,
// set-semantics row store (rows, schema, full-tuple dedupe map) plus
// lazily built hash indexes over arbitrary column subsets. Row slots are
// never removed, which keeps TupleIds and index entries stable while
// repair semantics flip membership. Which rows are currently *live* in
// R_i or recorded in the delta relation ∆_i (Sec. 3.1) is NOT stored
// here: that cheap per-run state lives in RelationView / InstanceView
// (relation/instance_view.h), so any number of concurrent repair runs
// share one copy of the rows and indexes.
//
// Thread model:
//  * InternRow mutates storage (rows, dedupe map, index maintenance) and
//    must not run concurrently with readers — loading/insertion is a
//    single-threaded phase.
//  * EnsureIndex is safe to call from concurrent readers: the first
//    caller builds the index under a mutex, later callers get a stable
//    pointer to the finished (from then on read-only) index.
#ifndef DELTAREPAIR_RELATION_RELATION_H_
#define DELTAREPAIR_RELATION_RELATION_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "relation/schema.h"
#include "relation/tuple.h"

namespace deltarepair {

/// Result of a set-semantics insert: the row slot and whether a new slot
/// was created (false on a dedupe hit).
struct InsertResult {
  uint32_t row = 0;
  bool inserted = false;
};

/// Flat open-addressed map from full-tuple hash to the row slots bearing
/// that hash. Replaces an unordered_map<u64, vector<u32>>: one slot
/// array plus one per-row chain link, so interning and bulk loads do no
/// per-entry heap allocation (snapshot recovery builds this table for
/// every relation on startup).
class DedupeTable {
 public:
  static constexpr uint32_t kNone = UINT32_MAX;

  bool empty() const { return size_ == 0; }

  /// Number of rows recorded (the chain-link array length).
  size_t num_rows() const { return next_.size(); }

  /// Pre-sizes the slot array for `n` distinct hashes.
  void Reserve(size_t n);

  /// First row slot recorded under `h`, or kNone. Follow Next() for the
  /// (rare) further rows sharing the hash.
  uint32_t Head(uint64_t h) const;
  uint32_t Next(uint32_t row) const { return next_[row]; }

  /// Records row `r` under hash `h`. Rows must be added with strictly
  /// increasing `r` (the row-slot counter).
  void Add(uint64_t h, uint32_t r);

  /// Bulk build: replaces any contents with rows 0..n-1 under `hashes`.
  /// Equivalent to Reserve + n Adds minus the per-add growth checks and
  /// call overhead — snapshot recovery's hot path.
  void BuildFrom(const uint64_t* hashes, uint32_t n);

  /// BuildFrom over hashes serialized as unaligned little-endian u64s
  /// (the snapshot wire layout), decoded in the build loop instead of
  /// through a temporary array.
  void BuildFromLe(const unsigned char* le_hashes, uint32_t n);

 private:
  void Grow(size_t min_slots);

  // Shared BuildFrom/BuildFromLe loop; get_hash(r) yields row r's hash.
  // Defined in relation.cc — both instantiations live there.
  template <typename GetHash>
  void BuildImpl(GetHash&& get_hash, uint32_t n);

  // Parallel slot arrays (power-of-two length); probing scans only
  // slot_hash_, so the probe working set is half of what a combined
  // {hash, head} struct array would touch. Hash 0 marks an empty slot;
  // real hashes are nudged to 1 (chains tolerate hash collisions — all
  // callers verify tuple equality).
  std::vector<uint64_t> slot_hash_;
  std::vector<uint32_t> slot_head_;
  std::vector<uint32_t> next_;  // per-row chain link
  size_t size_ = 0;  // occupied slots
};

class Relation {
 public:
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  // Storage is copyable (deep copy of rows and indexes); the index mutex
  // is per-instance and never copied.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  const RelationSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  size_t arity() const { return schema_.arity(); }

  /// Number of row slots ever created.
  size_t num_rows() const { return rows_.size(); }

  const Tuple& row(uint32_t r) const { return rows_[r]; }

  /// Set-semantics insert into storage. Returns the existing slot on a
  /// dedupe hit (inserted=false); liveness is the caller's (view's)
  /// concern. Arity must match the schema. Not safe against concurrent
  /// readers.
  InsertResult InternRow(Tuple t);

  /// Row slot holding exactly `t`, or -1 if absent.
  int64_t FindRow(const Tuple& t) const;

  /// Serialization hook (snapshot load): replaces this still-empty
  /// relation's storage with `rows` and adopts `dedupe`, a table the
  /// loader built from the per-row hashes recorded at snapshot-write
  /// time (so recovery re-hashes nothing, and can build the table on a
  /// worker thread before installation). `dedupe` must cover exactly
  /// `rows` under their HashTuple hashes — the snapshot loader
  /// validates its checksums before trusting them. Single-threaded,
  /// like InternRow; every row's arity must match.
  void BulkLoadRows(std::vector<Tuple> rows, DedupeTable dedupe);

  /// Bitmask with bit c set for each indexed column c.
  using ColumnMask = uint64_t;
  /// Key hash -> row slots with that hash, over one column mask.
  using Index = std::unordered_map<uint64_t, std::vector<uint32_t>>;

  /// Returns the hash index over the columns in `mask`, building it on
  /// first use (over all row slots; callers filter by view liveness at
  /// probe time). Thread-safe; the returned pointer stays valid and the
  /// index read-only for the relation's lifetime.
  const Index* EnsureIndex(ColumnMask mask) const;

  /// Rows of `index` whose `mask` columns hash-match `full_binding`
  /// (collisions possible; the caller must verify values). Returns
  /// nullptr when no row matches. Lock-free: `index` came from
  /// EnsureIndex and is immutable.
  const std::vector<uint32_t>* Probe(const Index* index, ColumnMask mask,
                                     const Tuple& full_binding) const;

  /// Convenience probe resolving the index by mask (requires a prior
  /// EnsureIndex with the same mask).
  const std::vector<uint32_t>* Probe(ColumnMask mask,
                                     const Tuple& full_binding) const;

  /// Debug rendering of all stored row slots (small relations only);
  /// liveness-aware rendering lives on the views.
  std::string ToString() const;

 private:
  uint64_t KeyHash(ColumnMask mask, const Tuple& t) const;

  RelationSchema schema_;
  std::vector<Tuple> rows_;
  // Full-tuple hash -> row slots with that hash (for set-semantics
  // interning).
  DedupeTable dedupe_;
  // Column-mask -> index. Guarded by index_mu_ for map lookups/inserts;
  // each Index is immutable once built (InternRow maintains existing
  // indexes, but never runs concurrently with readers).
  mutable std::unordered_map<ColumnMask, Index> indexes_;
  mutable std::mutex index_mu_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_RELATION_RELATION_H_
