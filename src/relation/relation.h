// Relation: an append-only row store with set semantics plus two membership
// bitmaps, `live` (tuple currently in R_i) and `delta` (tuple currently in
// the delta relation ∆_i of Sec. 3.1). Rows are never physically removed,
// which keeps TupleIds and hash indexes stable while repair semantics flip
// membership. Lazily-built hash indexes over arbitrary column subsets
// accelerate rule-body joins.
#ifndef DELTAREPAIR_RELATION_RELATION_H_
#define DELTAREPAIR_RELATION_RELATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "relation/schema.h"
#include "relation/tuple.h"

namespace deltarepair {

/// Result of an insert: the row slot and whether it was newly added.
struct InsertResult {
  uint32_t row = 0;
  bool inserted = false;
};

class Relation {
 public:
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  size_t arity() const { return schema_.arity(); }

  /// Number of row slots ever created (live + deleted).
  size_t num_rows() const { return rows_.size(); }
  /// Number of currently-live tuples.
  size_t live_count() const { return live_count_; }
  /// Number of tuples currently in the delta relation.
  size_t delta_count() const { return delta_count_; }

  const Tuple& row(uint32_t r) const { return rows_[r]; }
  bool live(uint32_t r) const { return live_[r] != 0; }
  bool delta(uint32_t r) const { return delta_[r] != 0; }

  /// Set-semantics insert of a live tuple. Arity must match the schema.
  InsertResult Insert(Tuple t);

  /// Row slot holding exactly `t`, or -1 if absent.
  int64_t FindRow(const Tuple& t) const;

  /// Removes the tuple from R_i and records it in ∆_i (delete + log).
  void MarkDeleted(uint32_t r);

  /// Records the tuple in ∆_i without removing it from R_i (used by end
  /// semantics during derivation, where base relations stay frozen).
  void SetDelta(uint32_t r);

  /// Reverts a MarkDeleted: the tuple is live again and leaves ∆_i (used
  /// by the exact reference solvers to undo trial deletions).
  void UnmarkDeleted(uint32_t r);

  /// Restores the load-time state: everything live, deltas empty.
  void ResetState();

  /// Bitmask with bit c set for each indexed column c.
  using ColumnMask = uint64_t;

  /// Ensures a hash index over the columns in `mask` exists (built over all
  /// row slots; callers filter by live/delta at probe time).
  void EnsureIndex(ColumnMask mask);

  /// Rows whose `mask` columns hash-match `key` (collisions possible; the
  /// caller must verify values). Returns nullptr when no row matches.
  const std::vector<uint32_t>* Probe(ColumnMask mask,
                                     const Tuple& full_binding) const;

  /// Copy of the (live, delta) bitmaps, for snapshot/rollback.
  struct State {
    std::vector<uint8_t> live;
    std::vector<uint8_t> delta;
    size_t live_count;
    size_t delta_count;
  };
  State SaveState() const;
  void RestoreState(const State& s);

  /// Debug rendering of live tuples (small relations only).
  std::string ToString() const;

 private:
  uint64_t KeyHash(ColumnMask mask, const Tuple& t) const;

  RelationSchema schema_;
  std::vector<Tuple> rows_;
  std::vector<uint8_t> live_;
  std::vector<uint8_t> delta_;
  size_t live_count_ = 0;
  size_t delta_count_ = 0;
  // Full-tuple hash -> row slots with that hash (for set-semantics insert).
  std::unordered_map<uint64_t, std::vector<uint32_t>> dedupe_;
  // Column-mask -> (key hash -> row slots).
  std::unordered_map<ColumnMask,
                     std::unordered_map<uint64_t, std::vector<uint32_t>>>
      indexes_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_RELATION_RELATION_H_
