// Relation: the immutable storage core of a relation — an append-only,
// set-semantics row store (rows, schema, full-tuple dedupe map) plus
// lazily built hash indexes over arbitrary column subsets. Row slots are
// never removed, which keeps TupleIds and index entries stable while
// repair semantics flip membership. Which rows are currently *live* in
// R_i or recorded in the delta relation ∆_i (Sec. 3.1) is NOT stored
// here: that cheap per-run state lives in RelationView / InstanceView
// (relation/instance_view.h), so any number of concurrent repair runs
// share one copy of the rows and indexes.
//
// Thread model:
//  * InternRow mutates storage (rows, dedupe map, index maintenance) and
//    must not run concurrently with readers — loading/insertion is a
//    single-threaded phase.
//  * EnsureIndex is safe to call from concurrent readers: the first
//    caller builds the index under a mutex, later callers get a stable
//    pointer to the finished (from then on read-only) index.
#ifndef DELTAREPAIR_RELATION_RELATION_H_
#define DELTAREPAIR_RELATION_RELATION_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "relation/schema.h"
#include "relation/tuple.h"

namespace deltarepair {

/// Result of a set-semantics insert: the row slot and whether a new slot
/// was created (false on a dedupe hit).
struct InsertResult {
  uint32_t row = 0;
  bool inserted = false;
};

class Relation {
 public:
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  // Storage is copyable (deep copy of rows and indexes); the index mutex
  // is per-instance and never copied.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  const RelationSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  size_t arity() const { return schema_.arity(); }

  /// Number of row slots ever created.
  size_t num_rows() const { return rows_.size(); }

  const Tuple& row(uint32_t r) const { return rows_[r]; }

  /// Set-semantics insert into storage. Returns the existing slot on a
  /// dedupe hit (inserted=false); liveness is the caller's (view's)
  /// concern. Arity must match the schema. Not safe against concurrent
  /// readers.
  InsertResult InternRow(Tuple t);

  /// Row slot holding exactly `t`, or -1 if absent.
  int64_t FindRow(const Tuple& t) const;

  /// Bitmask with bit c set for each indexed column c.
  using ColumnMask = uint64_t;
  /// Key hash -> row slots with that hash, over one column mask.
  using Index = std::unordered_map<uint64_t, std::vector<uint32_t>>;

  /// Returns the hash index over the columns in `mask`, building it on
  /// first use (over all row slots; callers filter by view liveness at
  /// probe time). Thread-safe; the returned pointer stays valid and the
  /// index read-only for the relation's lifetime.
  const Index* EnsureIndex(ColumnMask mask) const;

  /// Rows of `index` whose `mask` columns hash-match `full_binding`
  /// (collisions possible; the caller must verify values). Returns
  /// nullptr when no row matches. Lock-free: `index` came from
  /// EnsureIndex and is immutable.
  const std::vector<uint32_t>* Probe(const Index* index, ColumnMask mask,
                                     const Tuple& full_binding) const;

  /// Convenience probe resolving the index by mask (requires a prior
  /// EnsureIndex with the same mask).
  const std::vector<uint32_t>* Probe(ColumnMask mask,
                                     const Tuple& full_binding) const;

  /// Debug rendering of all stored row slots (small relations only);
  /// liveness-aware rendering lives on the views.
  std::string ToString() const;

 private:
  uint64_t KeyHash(ColumnMask mask, const Tuple& t) const;

  RelationSchema schema_;
  std::vector<Tuple> rows_;
  // Full-tuple hash -> row slots with that hash (for set-semantics
  // interning).
  std::unordered_map<uint64_t, std::vector<uint32_t>> dedupe_;
  // Column-mask -> index. Guarded by index_mu_ for map lookups/inserts;
  // each Index is immutable once built (InternRow maintains existing
  // indexes, but never runs concurrently with readers).
  mutable std::unordered_map<ColumnMask, Index> indexes_;
  mutable std::mutex index_mu_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_RELATION_RELATION_H_
