// RelationView / InstanceView: the cheap per-run mutable half of the
// relation split. A RelationView is a pair of membership bitmaps over one
// Relation's row slots — `live` (tuple currently in R_i) and `delta`
// (tuple currently in the delta relation ∆_i of Sec. 3.1) — plus their
// counters. An InstanceView bundles one RelationView per relation of a
// Database and is what the grounder, the four repair semantics, and the
// stability checks operate on.
//
// Many views can exist over one Database at a time: storage (rows,
// schema, dedupe, indexes) is shared and read-only during evaluation, so
// concurrent repair runs each mutate their own thread-local view.
// Mutating *storage* through a view (Insert) is a single-threaded
// operation — the four built-in semantics only flip membership bits.
#ifndef DELTAREPAIR_RELATION_INSTANCE_VIEW_H_
#define DELTAREPAIR_RELATION_INSTANCE_VIEW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/delta.h"
#include "relation/relation.h"

namespace deltarepair {

class Database;

/// Live/delta bitmaps + counters over one relation's row slots. Rows
/// beyond the view's horizon (slots interned after the view was created
/// or restored) read as neither live nor delta until adopted via Insert.
class RelationView {
 public:
  RelationView() = default;
  explicit RelationView(size_t num_rows) { ResetAllLive(num_rows); }

  /// Row slots this view covers (may lag the storage's num_rows).
  size_t num_rows() const { return live_.size(); }
  size_t live_count() const { return live_count_; }
  size_t delta_count() const { return delta_count_; }

  bool live(uint32_t r) const { return r < live_.size() && live_[r] != 0; }
  bool delta(uint32_t r) const {
    return r < delta_.size() && delta_[r] != 0;
  }

  /// Removes the tuple from R_i and records it in ∆_i (delete + log).
  void MarkDeleted(uint32_t r);

  /// Records the tuple in ∆_i without removing it from R_i (used by end
  /// semantics during derivation, where base relations stay frozen).
  void SetDelta(uint32_t r);

  /// Removes the tuple from R_i *without* recording it in ∆_i: an
  /// external update to the instance (service layer), not a repair
  /// deletion. Also clears a stale delta flag, so the row reads as
  /// simply absent.
  void Retract(uint32_t r);

  /// Reverts a MarkDeleted: the tuple is live again and leaves ∆_i (used
  /// by the exact reference solvers to undo trial deletions).
  void UnmarkDeleted(uint32_t r);

  /// Adopts a row slot returned by Relation::InternRow as live: grows the
  /// view to cover it, and revives it (live again, out of ∆_i) when a
  /// dedupe hit landed on a row this view had deleted. Returns true when
  /// the row was not live before the call.
  bool AdoptLive(uint32_t r);

  /// Everything live, deltas empty, over `num_rows` slots.
  void ResetAllLive(size_t num_rows);

  /// Copy of the (live, delta) bitmaps, for snapshot/rollback.
  struct State {
    std::vector<uint8_t> live;
    std::vector<uint8_t> delta;
    size_t live_count = 0;
    size_t delta_count = 0;
  };
  State Save() const;
  /// Restores `s`. Row slots interned after the snapshot fall beyond the
  /// restored horizon and read as neither live nor delta — restoring
  /// never aborts on grown storage.
  void Restore(const State& s);

 private:
  void Grow(uint32_t r);

  std::vector<uint8_t> live_;
  std::vector<uint8_t> delta_;
  size_t live_count_ = 0;
  size_t delta_count_ = 0;
};

/// One database instance state: a RelationView per relation, over shared
/// storage. Create per-run copies with Database::SnapshotView(); the
/// canonical state used by the sequential API is Database::base_view().
class InstanceView {
 public:
  InstanceView() = default;
  /// A view mirroring `db`'s storage with everything live. `db` must
  /// outlive the view.
  explicit InstanceView(Database* db);

  const Database& db() const { return *db_; }
  Database* mutable_db() { return db_; }

  size_t num_relations() const { return rels_.size(); }
  const Relation& relation(uint32_t i) const;
  RelationView& rel(uint32_t i) { return rels_[i]; }
  const RelationView& rel(uint32_t i) const { return rels_[i]; }

  bool live(TupleId id) const { return rels_[id.relation].live(id.row); }
  bool delta(TupleId id) const { return rels_[id.relation].delta(id.row); }
  void MarkDeleted(TupleId id);
  void SetDelta(TupleId id);
  void UnmarkDeleted(TupleId id);
  void Retract(TupleId id);

  /// Set-semantics insert of a live tuple: interns the row into shared
  /// storage (single-threaded; see class comment) and adopts it in this
  /// view. A dedupe hit on a row this view had deleted *revives* it —
  /// live again, removed from ∆_i — and still reports inserted=false.
  InsertResult Insert(uint32_t rel, Tuple t);

  /// Brings this view forward across an external update: adopts every
  /// inserted row as live and retracts every deleted row. Used to carry a
  /// snapshot view (or warm engine state) from one instance version to
  /// the next without re-copying the whole bitmap set; the delta must
  /// come from the same database's history (Database::DeltaSince).
  void ApplyDelta(const Delta& delta);

  /// Total live tuples across relations (the size of D).
  size_t TotalLive() const;
  /// Total delta tuples across relations.
  size_t TotalDelta() const;

  /// All live tuple ids (deterministic order: relation-major).
  std::vector<TupleId> LiveTupleIds() const;
  /// All tuple ids currently in delta relations.
  std::vector<TupleId> DeltaTupleIds() const;

  /// Everything live (up to current storage), deltas empty.
  void ResetAllLive();

  /// Whole-instance (live, delta) snapshot.
  using State = std::vector<RelationView::State>;
  State SaveState() const;
  void RestoreState(const State& s);

  /// Debug rendering of live tuples (small instances only).
  std::string ToString() const;

 private:
  friend class Database;

  Database* db_ = nullptr;
  std::vector<RelationView> rels_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_RELATION_INSTANCE_VIEW_H_
