#include "relation/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace deltarepair {

Status LoadCsvIntoDatabase(Database* db, const std::string& relation_name,
                           const std::string& csv_text) {
  std::vector<std::string> lines = Split(csv_text, '\n');
  if (lines.empty() || Trim(lines[0]).empty()) {
    return Status::InvalidArgument("empty CSV for " + relation_name);
  }
  // Schema line: name:type fields.
  std::vector<Attribute> attrs;
  for (const std::string& field : Split(std::string(Trim(lines[0])), ',')) {
    std::vector<std::string> parts = Split(field, ':');
    if (parts.empty() || Trim(parts[0]).empty()) {
      return Status::InvalidArgument("bad schema field '" + field + "'");
    }
    Attribute attr;
    attr.name = std::string(Trim(parts[0]));
    std::string type = parts.size() > 1 ? std::string(Trim(parts[1])) : "str";
    if (type == "int" || type == "i") {
      attr.type = ValueType::kInt;
    } else if (type == "str" || type == "s" || type == "string") {
      attr.type = ValueType::kString;
    } else {
      return Status::InvalidArgument("unknown type '" + type + "' in " +
                                     relation_name);
    }
    attrs.push_back(std::move(attr));
  }
  if (db->RelationIndex(relation_name) >= 0) {
    return Status::AlreadyExists("relation " + relation_name);
  }
  uint32_t rel =
      db->AddRelation(RelationSchema(relation_name, std::move(attrs)));
  const RelationSchema& schema = db->relation(rel).schema();

  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = Trim(lines[i]);
    if (line.empty()) continue;
    std::vector<std::string> cells = Split(std::string(line), ',');
    if (cells.size() != schema.arity()) {
      return Status::InvalidArgument(
          StrFormat("%s line %zu: expected %zu cells, got %zu",
                    relation_name.c_str(), i + 1, schema.arity(),
                    cells.size()));
    }
    Tuple tuple;
    tuple.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      std::string cell = std::string(Trim(cells[c]));
      if (schema.attribute(c).type == ValueType::kInt) {
        char* end = nullptr;
        long long v = std::strtoll(cell.c_str(), &end, 10);
        if (end == cell.c_str() || *end != '\0') {
          return Status::InvalidArgument(
              StrFormat("%s line %zu: '%s' is not an integer",
                        relation_name.c_str(), i + 1, cell.c_str()));
        }
        tuple.emplace_back(static_cast<int64_t>(v));
      } else {
        tuple.emplace_back(std::move(cell));
      }
    }
    db->Insert(rel, std::move(tuple));
  }
  return Status::OK();
}

Status LoadCsvFile(Database* db, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  // Relation name: basename without extension.
  size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  return LoadCsvIntoDatabase(db, base, buffer.str());
}

std::string RelationToCsv(const Database& db, uint32_t rel) {
  const Relation& relation = db.relation(rel);
  const RelationView& view = db.base_view().rel(rel);
  std::string out;
  const RelationSchema& schema = relation.schema();
  for (size_t c = 0; c < schema.arity(); ++c) {
    if (c) out += ',';
    out += schema.attribute(c).name;
    out += schema.attribute(c).type == ValueType::kInt ? ":int" : ":str";
  }
  out += '\n';
  for (uint32_t r = 0; r < relation.num_rows(); ++r) {
    if (!view.live(r)) continue;
    const Tuple& t = relation.row(r);
    for (size_t c = 0; c < t.size(); ++c) {
      if (c) out += ',';
      out += t[c].is_string() ? t[c].AsString() : t[c].ToString();
    }
    out += '\n';
  }
  return out;
}

}  // namespace deltarepair
