// Relation schemas and the catalog: named relations with typed attributes.
// Mirrors Sec. 2 of the paper: a schema R = (R1..Rk), each Ri with
// attribute set Ai. Delta relations (Sec. 3.1) share the base schema and
// are represented as membership flags on the base relation, not as separate
// physical tables.
#ifndef DELTAREPAIR_RELATION_SCHEMA_H_
#define DELTAREPAIR_RELATION_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relation/value.h"

namespace deltarepair {

/// One attribute: name + type.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt;
};

/// Schema of one relation.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<Attribute> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  size_t arity() const { return attributes_.size(); }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }

  /// Index of the attribute named `name`, or -1.
  int AttributeIndex(const std::string& name) const;

  /// e.g. "Author(aid:int, name:str, oid:int)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
};

/// Convenience builder: all-int attributes from names.
RelationSchema MakeIntSchema(std::string relation,
                             std::vector<std::string> attr_names);

/// Convenience builder with explicit types: 'i' = int, 's' = string.
/// `type_codes` must have one char per attribute.
RelationSchema MakeSchema(std::string relation,
                          std::vector<std::string> attr_names,
                          std::string_view type_codes);

}  // namespace deltarepair

#endif  // DELTAREPAIR_RELATION_SCHEMA_H_
