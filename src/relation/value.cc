#include "relation/value.h"

#include "common/hash.h"
#include "common/status.h"

namespace deltarepair {

int64_t Value::AsInt() const {
  DR_CHECK_MSG(is_int(), "Value::AsInt on non-int");
  return int_;
}

const std::string& Value::AsString() const {
  DR_CHECK_MSG(is_string(), "Value::AsString on non-string");
  return str_;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt:
      return int_ == other.int_;
    case ValueType::kString:
      return str_ == other.str_;
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  if (type_ != other.type_) {
    return static_cast<uint8_t>(type_) < static_cast<uint8_t>(other.type_);
  }
  switch (type_) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return int_ < other.int_;
    case ValueType::kString:
      return str_ < other.str_;
  }
  return false;
}

uint64_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return 0x6e756c6cULL;
    case ValueType::kInt:
      return Mix64(static_cast<uint64_t>(int_) ^ 0x1234abcdULL);
    case ValueType::kString:
      return HashBytes(str_);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(int_);
    case ValueType::kString:
      return "'" + str_ + "'";
  }
  return "?";
}

}  // namespace deltarepair
