#include "relation/instance_view.h"

#include <algorithm>

#include "common/status.h"
#include "relation/database.h"

namespace deltarepair {

void RelationView::Grow(uint32_t r) {
  if (r >= live_.size()) {
    live_.resize(r + 1, 0);
    delta_.resize(r + 1, 0);
  }
}

void RelationView::MarkDeleted(uint32_t r) {
  Grow(r);
  if (live_[r]) {
    live_[r] = 0;
    --live_count_;
  }
  if (!delta_[r]) {
    delta_[r] = 1;
    ++delta_count_;
  }
}

void RelationView::SetDelta(uint32_t r) {
  Grow(r);
  if (!delta_[r]) {
    delta_[r] = 1;
    ++delta_count_;
  }
}

void RelationView::Retract(uint32_t r) {
  Grow(r);
  if (live_[r]) {
    live_[r] = 0;
    --live_count_;
  }
  if (delta_[r]) {
    delta_[r] = 0;
    --delta_count_;
  }
}

void RelationView::UnmarkDeleted(uint32_t r) {
  Grow(r);
  if (!live_[r]) {
    live_[r] = 1;
    ++live_count_;
  }
  if (delta_[r]) {
    delta_[r] = 0;
    --delta_count_;
  }
}

bool RelationView::AdoptLive(uint32_t r) {
  Grow(r);
  if (live_[r]) return false;
  UnmarkDeleted(r);  // revive: live again, out of the delta relation
  return true;
}

void RelationView::ResetAllLive(size_t num_rows) {
  live_.assign(num_rows, 1);
  delta_.assign(num_rows, 0);
  live_count_ = num_rows;
  delta_count_ = 0;
}

RelationView::State RelationView::Save() const {
  return State{live_, delta_, live_count_, delta_count_};
}

void RelationView::Restore(const State& s) {
  live_ = s.live;
  delta_ = s.delta;
  live_count_ = s.live_count;
  delta_count_ = s.delta_count;
}

InstanceView::InstanceView(Database* db) : db_(db) {
  rels_.reserve(db->num_relations());
  for (uint32_t i = 0; i < db->num_relations(); ++i) {
    rels_.emplace_back(db->relation(i).num_rows());
  }
}

const Relation& InstanceView::relation(uint32_t i) const {
  return db_->relation(i);
}

void InstanceView::MarkDeleted(TupleId id) {
  DR_CHECK(id.row < db_->relation(id.relation).num_rows());
  rels_[id.relation].MarkDeleted(id.row);
}

void InstanceView::SetDelta(TupleId id) {
  DR_CHECK(id.row < db_->relation(id.relation).num_rows());
  rels_[id.relation].SetDelta(id.row);
}

void InstanceView::UnmarkDeleted(TupleId id) {
  DR_CHECK(id.row < db_->relation(id.relation).num_rows());
  rels_[id.relation].UnmarkDeleted(id.row);
}

void InstanceView::Retract(TupleId id) {
  DR_CHECK(id.row < db_->relation(id.relation).num_rows());
  rels_[id.relation].Retract(id.row);
}

InsertResult InstanceView::Insert(uint32_t rel, Tuple t) {
  DR_CHECK(rel < rels_.size());
  InsertResult r = db_->mutable_relation(rel).InternRow(std::move(t));
  rels_[rel].AdoptLive(r.row);
  return r;
}

void InstanceView::ApplyDelta(const Delta& delta) {
  const size_t n = std::min(delta.rels.size(), rels_.size());
  for (uint32_t rel = 0; rel < n; ++rel) {
    for (uint32_t r : delta.rels[rel].inserted) rels_[rel].AdoptLive(r);
    for (uint32_t r : delta.rels[rel].deleted) rels_[rel].Retract(r);
  }
}

size_t InstanceView::TotalLive() const {
  size_t n = 0;
  for (const auto& r : rels_) n += r.live_count();
  return n;
}

size_t InstanceView::TotalDelta() const {
  size_t n = 0;
  for (const auto& r : rels_) n += r.delta_count();
  return n;
}

std::vector<TupleId> InstanceView::LiveTupleIds() const {
  std::vector<TupleId> out;
  out.reserve(TotalLive());
  for (uint32_t i = 0; i < rels_.size(); ++i) {
    const uint32_t n = static_cast<uint32_t>(rels_[i].num_rows());
    for (uint32_t r = 0; r < n; ++r) {
      if (rels_[i].live(r)) out.push_back(TupleId{i, r});
    }
  }
  return out;
}

std::vector<TupleId> InstanceView::DeltaTupleIds() const {
  std::vector<TupleId> out;
  for (uint32_t i = 0; i < rels_.size(); ++i) {
    const uint32_t n = static_cast<uint32_t>(rels_[i].num_rows());
    for (uint32_t r = 0; r < n; ++r) {
      if (rels_[i].delta(r)) out.push_back(TupleId{i, r});
    }
  }
  return out;
}

void InstanceView::ResetAllLive() {
  for (uint32_t i = 0; i < rels_.size(); ++i) {
    rels_[i].ResetAllLive(db_->relation(i).num_rows());
  }
}

InstanceView::State InstanceView::SaveState() const {
  State s;
  s.reserve(rels_.size());
  for (const auto& r : rels_) s.push_back(r.Save());
  return s;
}

void InstanceView::RestoreState(const State& s) {
  DR_CHECK(s.size() == rels_.size());
  for (size_t i = 0; i < rels_.size(); ++i) rels_[i].Restore(s[i]);
}

std::string InstanceView::ToString() const {
  std::string out;
  for (uint32_t i = 0; i < rels_.size(); ++i) {
    const Relation& rel = db_->relation(i);
    out += rel.schema().ToString() + " {";
    bool first = true;
    const uint32_t n = static_cast<uint32_t>(rels_[i].num_rows());
    for (uint32_t r = 0; r < n; ++r) {
      if (!rels_[i].live(r)) continue;
      if (!first) out += ", ";
      first = false;
      out += TupleToString(rel.row(r));
    }
    out += "}\n";
  }
  return out;
}

}  // namespace deltarepair
