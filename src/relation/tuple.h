// Tuples and stable tuple identifiers. A TupleId names a tuple for its
// whole lifetime (relation index + row slot); deletion flips membership
// flags but never moves rows, so ids — and any index built over rows —
// remain valid across repair evaluation.
#ifndef DELTAREPAIR_RELATION_TUPLE_H_
#define DELTAREPAIR_RELATION_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "relation/value.h"

namespace deltarepair {

/// Row payload: a fixed-arity vector of values.
using Tuple = std::vector<Value>;

/// Order-sensitive hash over a tuple's values.
uint64_t HashTuple(const Tuple& t);

/// Rendering: "(1, 'ERC')".
std::string TupleToString(const Tuple& t);

/// Stable identity of a tuple within a Database.
struct TupleId {
  uint32_t relation = UINT32_MAX;
  uint32_t row = UINT32_MAX;

  bool valid() const { return relation != UINT32_MAX; }

  bool operator==(const TupleId& o) const {
    return relation == o.relation && row == o.row;
  }
  bool operator!=(const TupleId& o) const { return !(*this == o); }
  bool operator<(const TupleId& o) const {
    return relation != o.relation ? relation < o.relation : row < o.row;
  }

  /// Packs into one 64-bit key (hashing, map keys).
  uint64_t Pack() const {
    return (static_cast<uint64_t>(relation) << 32) | row;
  }
  static TupleId Unpack(uint64_t packed) {
    return TupleId{static_cast<uint32_t>(packed >> 32),
                   static_cast<uint32_t>(packed & 0xffffffffULL)};
  }
};

struct TupleIdHash {
  size_t operator()(const TupleId& id) const {
    return static_cast<size_t>(Mix64(id.Pack()));
  }
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_RELATION_TUPLE_H_
