#include "relation/tuple.h"

namespace deltarepair {

uint64_t HashTuple(const Tuple& t) {
  uint64_t h = 0x74757065ULL;
  for (const Value& v : t) h = HashCombine(h, v.Hash());
  return h;
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace deltarepair
