#include "relation/schema.h"

namespace deltarepair {

int RelationSchema::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string RelationSchema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i) out += ", ";
    out += attributes_[i].name;
    out += attributes_[i].type == ValueType::kInt ? ":int" : ":str";
  }
  out += ")";
  return out;
}

RelationSchema MakeIntSchema(std::string relation,
                             std::vector<std::string> attr_names) {
  std::vector<Attribute> attrs;
  attrs.reserve(attr_names.size());
  for (auto& n : attr_names) {
    attrs.push_back(Attribute{std::move(n), ValueType::kInt});
  }
  return RelationSchema(std::move(relation), std::move(attrs));
}

RelationSchema MakeSchema(std::string relation,
                          std::vector<std::string> attr_names,
                          std::string_view type_codes) {
  DR_CHECK(attr_names.size() == type_codes.size());
  std::vector<Attribute> attrs;
  attrs.reserve(attr_names.size());
  for (size_t i = 0; i < attr_names.size(); ++i) {
    ValueType t = type_codes[i] == 's' ? ValueType::kString : ValueType::kInt;
    attrs.push_back(Attribute{std::move(attr_names[i]), t});
  }
  return RelationSchema(std::move(relation), std::move(attrs));
}

}  // namespace deltarepair
