#include "relation/delta.h"

#include <unordered_set>

#include "common/status.h"

namespace deltarepair {

std::vector<TupleId> Delta::InsertedIds() const {
  std::vector<TupleId> out;
  for (uint32_t rel = 0; rel < rels.size(); ++rel)
    for (uint32_t r : rels[rel].inserted) out.push_back(TupleId{rel, r});
  return out;
}

std::vector<TupleId> Delta::DeletedIds() const {
  std::vector<TupleId> out;
  for (uint32_t rel = 0; rel < rels.size(); ++rel)
    for (uint32_t r : rels[rel].deleted) out.push_back(TupleId{rel, r});
  return out;
}

void Delta::MergeFrom(const Delta& next) {
  DR_CHECK_MSG(next.from_version == to_version,
               "merging non-consecutive deltas");
  if (rels.size() < next.rels.size()) rels.resize(next.rels.size());
  for (size_t i = 0; i < next.rels.size(); ++i) {
    RelationDelta& cur = rels[i];
    const RelationDelta& nxt = next.rels[i];
    if (nxt.inserted.empty() && nxt.deleted.empty()) continue;
    std::unordered_set<uint32_t> nxt_ins(nxt.inserted.begin(),
                                         nxt.inserted.end());
    std::unordered_set<uint32_t> nxt_del(nxt.deleted.begin(),
                                         nxt.deleted.end());
    std::unordered_set<uint32_t> cur_ins(cur.inserted.begin(),
                                         cur.inserted.end());
    std::unordered_set<uint32_t> cur_del(cur.deleted.begin(),
                                         cur.deleted.end());
    RelationDelta merged;
    // Inserted here and not deleted since, or newly inserted and not a
    // reinsert of a row this delta deleted (those pairs cancel).
    for (uint32_t r : cur.inserted)
      if (!nxt_del.count(r)) merged.inserted.push_back(r);
    for (uint32_t r : nxt.inserted)
      if (!cur_del.count(r)) merged.inserted.push_back(r);
    for (uint32_t r : cur.deleted)
      if (!nxt_ins.count(r)) merged.deleted.push_back(r);
    for (uint32_t r : nxt.deleted)
      if (!cur_ins.count(r)) merged.deleted.push_back(r);
    cur = std::move(merged);
  }
  to_version = next.to_version;
}

std::string Delta::ToString() const {
  size_t ins = 0, del = 0;
  for (const auto& r : rels) {
    ins += r.inserted.size();
    del += r.deleted.size();
  }
  return "delta v" + std::to_string(from_version) + "->v" +
         std::to_string(to_version) + ": +" + std::to_string(ins) + " -" +
         std::to_string(del);
}

}  // namespace deltarepair
