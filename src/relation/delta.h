// Delta: an explicit description of what changed in a database instance
// between two versions — per-relation inserted/deleted row-id sets plus
// the version interval they span. Deltas are *realized*: a row appears
// under `inserted` only if the update actually turned it live (inserting
// an already-live tuple is a no-op and is not recorded), and under
// `deleted` only if it was live before. Consecutive deltas compose with
// MergeFrom, which cancels insert-then-delete / delete-then-reinsert
// pairs so the merged delta is again realized.
//
// The Database stamps every external update with a monotonically
// increasing version and keeps a bounded history of realized deltas, so
// warm engine state pinned at version v can ask "what changed since v?"
// (Database::DeltaSince) instead of rebuilding from scratch.
#ifndef DELTAREPAIR_RELATION_DELTA_H_
#define DELTAREPAIR_RELATION_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/tuple.h"

namespace deltarepair {

struct Delta {
  /// Row ids inserted / deleted in one relation. Within one realized
  /// delta a row appears in at most one of the two lists.
  struct RelationDelta {
    std::vector<uint32_t> inserted;
    std::vector<uint32_t> deleted;
  };

  /// The instance versions this delta spans: applying it to a state at
  /// `from_version` yields the state at `to_version`.
  uint64_t from_version = 0;
  uint64_t to_version = 0;

  /// One entry per relation of the database (indexed by relation id).
  std::vector<RelationDelta> rels;

  bool empty() const {
    for (const auto& r : rels)
      if (!r.inserted.empty() || !r.deleted.empty()) return false;
    return true;
  }

  /// Total number of row changes recorded.
  size_t size() const {
    size_t n = 0;
    for (const auto& r : rels) n += r.inserted.size() + r.deleted.size();
    return n;
  }

  /// All inserted / deleted rows as TupleIds (relation-major order).
  std::vector<TupleId> InsertedIds() const;
  std::vector<TupleId> DeletedIds() const;

  /// Composes `next` (whose from_version must equal this delta's
  /// to_version) into this delta. Cancelling pairs collapse: a row
  /// inserted here and deleted in `next` vanishes from the merge, and a
  /// row deleted here and re-inserted in `next` likewise (the row ends
  /// where it started — warm state needs no change for it).
  void MergeFrom(const Delta& next);

  /// Debug rendering, e.g. "delta v3->v5: +2 -1".
  std::string ToString() const;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_RELATION_DELTA_H_
