// Process-scoped metrics: named counters, gauges and exponential-bucket
// histograms with cheap atomic recording, rendered in Prometheus text
// exposition format.
//
// Relationship to the `*Stats` structs (RepairStats, CqaStats,
// SolverStats, IncrementalEngine::Stats): those remain the
// request-scoped API — one struct per run, returned with the result.
// The registry is the process-scoped aggregate they also feed
// (obs/stats_bridge.h folds a finished run's stats into the global
// registry), plus live series the structs can't carry: latency
// histograms, queue-wait distributions, I/O phase timings.
//
// Usage pattern at a call site — resolve once, record forever:
//
//   static Counter* rounds = MetricsRegistry::Global().GetCounter(
//       "drepair_fixpoint_rounds_total", "Semi-naive fixpoint rounds");
//   rounds->Inc();
//
// Returned pointers are stable for the registry's lifetime (series are
// never removed). Recording is lock-free: counters/histogram buckets
// are relaxed atomic adds, gauge/histogram-sum doubles are CAS loops.
// Name lookup takes the registry mutex — cache the pointer.
//
// One metric family may carry one label key with multiple values
// (e.g. drepair_requests_total{type="repair"}): pass the same
// name/help/label_key with a different label_value.
#ifndef DELTAREPAIR_OBS_METRICS_H_
#define DELTAREPAIR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace deltarepair {

/// Monotonically increasing counter.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous double value (Set wins over concurrent Add).
class Gauge {
 public:
  void Set(double v) { bits_.store(Encode(v), std::memory_order_relaxed); }
  void Add(double delta) {
    uint64_t old = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(old, Encode(Decode(old) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const { return Decode(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t Encode(double v);
  static double Decode(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
};

/// Histogram with fixed exponential base-2 buckets: upper bounds
/// 1e-6 * 2^i seconds for i in [0, kNumBuckets) — 1µs up to ~67s —
/// plus +Inf. One layout for every series keeps recording branch-free
/// and exposition aggregatable across processes.
class Histogram {
 public:
  static constexpr int kNumBuckets = 27;

  void Observe(double v);

  uint64_t count() const;
  double sum() const;
  /// Cumulative count of observations <= UpperBound(i); the +Inf bucket
  /// is count().
  uint64_t CumulativeCount(int bucket) const;
  static double UpperBound(int bucket);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> inf_bucket_{0};
  std::atomic<uint64_t> sum_bits_{0};
};

/// Named metric registry. Instantiable for tests; production call sites
/// use Global().
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Unlabeled series. Help text is taken from the first registration
  /// of a family; kind mismatches on an existing name are a fatal bug.
  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& help);

  /// Labeled series: one label key per family, any number of values.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const std::string& label_key,
                      const std::string& label_value);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const std::string& label_key,
                          const std::string& label_value);

  /// Prometheus text exposition (families sorted by name, series by
  /// label value).
  std::string PrometheusText() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    std::string label_value;  // empty = unlabeled
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    Kind kind = Kind::kCounter;
    std::string label_key;  // empty = unlabeled family
    std::vector<std::unique_ptr<Series>> series;
  };

  Series* GetSeries(const std::string& name, const std::string& help,
                    Kind kind, const std::string& label_key,
                    const std::string& label_value);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_OBS_METRICS_H_
