// Folds finished runs' request-scoped stats structs (the per-request
// API, unchanged) into the process-scoped MetricsRegistry. Called once
// per completed repair / CQA execution by the serving layers (server,
// warm engine, CLI batch) — never from inner loops, so the cost is a
// handful of atomic adds per request.
#ifndef DELTAREPAIR_OBS_STATS_BRIDGE_H_
#define DELTAREPAIR_OBS_STATS_BRIDGE_H_

namespace deltarepair {

struct RepairStats;
struct CqaStats;

/// Adds one finished repair run's counters and phase timings to the
/// global registry (drepair_engine_*, drepair_sat_*,
/// drepair_repair_phase_seconds).
void AddRepairStatsToMetrics(const RepairStats& stats);

/// Adds one finished CQA run (answers/verdicts, slicing layer, plus the
/// nested RepairStats) to the global registry.
void AddCqaStatsToMetrics(const CqaStats& stats);

}  // namespace deltarepair

#endif  // DELTAREPAIR_OBS_STATS_BRIDGE_H_
