#include "obs/log.h"

#include <cstdarg>
#include <cstdio>
#include <ctime>
#include <mutex>

#include <sys/time.h>

namespace deltarepair {

namespace {

std::atomic<bool> g_structured{false};
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
// Serializes whole lines so concurrent workers never interleave.
std::mutex g_write_mu;

void WriteStructuredLine(LogLevel level, uint64_t trace_id, const char* fmt,
                         va_list args) {
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  struct tm utc;
  time_t secs = tv.tv_sec;
  gmtime_r(&secs, &utc);

  char ts[40];
  std::snprintf(ts, sizeof(ts), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(tv.tv_usec / 1000));

  char trace[24];
  if (trace_id == 0) {
    std::snprintf(trace, sizeof(trace), "-");
  } else {
    std::snprintf(trace, sizeof(trace), "%016llx",
                  static_cast<unsigned long long>(trace_id));
  }

  char msg[1024];
  std::vsnprintf(msg, sizeof(msg), fmt, args);

  std::lock_guard<std::mutex> lock(g_write_mu);
  std::fprintf(stderr, "%s %-5s trace=%s %s\n", ts, Log::LevelName(level),
               trace, msg);
  std::fflush(stderr);
}

}  // namespace

void Log::SetStructured(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_structured.store(true, std::memory_order_relaxed);
}

bool Log::structured() {
  return g_structured.load(std::memory_order_relaxed);
}

LogLevel Log::level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool Log::ParseLevel(const std::string& text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else if (text == "off") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

const char* Log::LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Log::Startup(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  if (!structured()) {
    std::lock_guard<std::mutex> lock(g_write_mu);
    std::vprintf(fmt, args);
    std::printf("\n");
    std::fflush(stdout);
  } else if (Enabled(LogLevel::kInfo)) {
    WriteStructuredLine(LogLevel::kInfo, 0, fmt, args);
  }
  va_end(args);
}

void Log::Event(LogLevel level, uint64_t trace_id, const char* fmt, ...) {
  if (!Enabled(level)) return;
  va_list args;
  va_start(args, fmt);
  WriteStructuredLine(level, trace_id, fmt, args);
  va_end(args);
}

}  // namespace deltarepair
