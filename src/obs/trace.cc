#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "common/json_writer.h"

namespace deltarepair {

namespace trace_internal {

std::atomic<bool> g_enabled{false};

namespace {

std::atomic<uint64_t> g_sample_period{1};
std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<size_t> g_ring_capacity{4096};

thread_local uint64_t tls_trace_id = 0;
thread_local bool tls_suppressed = false;
thread_local uint32_t tls_depth = 0;

uint64_t SteadyNowNs() {
  // The epoch is the first call, so Chrome-JSON timestamps start near 0.
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - kEpoch)
          .count());
}

// One ring slot under a per-slot seqlock: `seq` is odd while the owner
// thread writes, and payload words are relaxed atomics, so collectors
// racing a wrapping writer read either a stable record or a detectable
// torn one — never a data race.
struct Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> start_ns{0};
  std::atomic<uint64_t> dur_ns{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> meta{0};  // tid << 32 | depth
  std::atomic<const char*> key0{nullptr};
  std::atomic<const char*> key1{nullptr};
  std::atomic<uint64_t> val0{0};
  std::atomic<uint64_t> val1{0};
};

struct ThreadBuffer {
  explicit ThreadBuffer(size_t capacity)
      : slots(capacity), mask(capacity - 1) {}

  std::vector<Slot> slots;
  size_t mask;
  std::atomic<uint64_t> head{0};  // owner-incremented write cursor
  uint32_t tid = 0;

  // Owner-thread only.
  void Record(const TraceEvent& ev) {
    uint64_t h = head.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots[h & mask];
    uint64_t seq = s.seq.load(std::memory_order_relaxed);
    s.seq.store(seq + 1, std::memory_order_relaxed);  // odd: writing
    std::atomic_thread_fence(std::memory_order_release);
    s.name.store(ev.name, std::memory_order_relaxed);
    s.start_ns.store(ev.start_ns, std::memory_order_relaxed);
    s.dur_ns.store(ev.dur_ns, std::memory_order_relaxed);
    s.trace_id.store(ev.trace_id, std::memory_order_relaxed);
    s.meta.store((uint64_t{ev.tid} << 32) | ev.depth,
                 std::memory_order_relaxed);
    s.key0.store(ev.arg_keys[0], std::memory_order_relaxed);
    s.key1.store(ev.arg_keys[1], std::memory_order_relaxed);
    s.val0.store(ev.arg_vals[0], std::memory_order_relaxed);
    s.val1.store(ev.arg_vals[1], std::memory_order_relaxed);
    s.seq.store(seq + 2, std::memory_order_release);  // even: stable
  }

  // Any thread; torn slots are skipped.
  void CollectInto(std::vector<TraceEvent>* out) const {
    for (const Slot& s : slots) {
      uint64_t s1 = s.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) continue;
      TraceEvent ev;
      ev.name = s.name.load(std::memory_order_relaxed);
      ev.start_ns = s.start_ns.load(std::memory_order_relaxed);
      ev.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      ev.trace_id = s.trace_id.load(std::memory_order_relaxed);
      uint64_t meta = s.meta.load(std::memory_order_relaxed);
      ev.tid = static_cast<uint32_t>(meta >> 32);
      ev.depth = static_cast<uint32_t>(meta & 0xffffffffu);
      ev.arg_keys[0] = s.key0.load(std::memory_order_relaxed);
      ev.arg_keys[1] = s.key1.load(std::memory_order_relaxed);
      ev.arg_vals[0] = s.val0.load(std::memory_order_relaxed);
      ev.arg_vals[1] = s.val1.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != s1) continue;
      if (ev.name == nullptr) continue;
      out->push_back(ev);
    }
  }

  void ClearSlots() {
    for (Slot& s : slots) s.seq.store(0, std::memory_order_relaxed);
    head.store(0, std::memory_order_relaxed);
  }
};

// Owns every ring ever created; the mutex guards registration, reuse
// and collection only — recording never takes it.
struct BufferRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> all;
  std::vector<ThreadBuffer*> free_list;
  uint32_t next_tid = 1;

  static BufferRegistry& Get() {
    static BufferRegistry* kRegistry = new BufferRegistry();
    return *kRegistry;
  }

  ThreadBuffer* Acquire() {
    size_t capacity = g_ring_capacity.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu);
    while (!free_list.empty()) {
      ThreadBuffer* buf = free_list.back();
      free_list.pop_back();
      if (buf->slots.size() == capacity) {
        buf->ClearSlots();  // a dead thread's spans must not resurface
        return buf;
      }
    }
    all.push_back(std::make_unique<ThreadBuffer>(capacity));
    all.back()->tid = next_tid++;
    return all.back().get();
  }

  void Release(ThreadBuffer* buf) {
    std::lock_guard<std::mutex> lock(mu);
    free_list.push_back(buf);
  }
};

// Thread-local handle; returns the ring to the free list on thread exit
// so a churning thread pool reuses a bounded set of rings.
struct TlsBuffer {
  ThreadBuffer* buf = nullptr;
  ~TlsBuffer() {
    if (buf != nullptr) BufferRegistry::Get().Release(buf);
  }
};

ThreadBuffer* CurrentBuffer() {
  thread_local TlsBuffer tls;
  if (tls.buf == nullptr) tls.buf = BufferRegistry::Get().Acquire();
  return tls.buf;
}

}  // namespace
}  // namespace trace_internal

using trace_internal::BufferRegistry;
using trace_internal::CurrentBuffer;
using trace_internal::g_next_trace_id;
using trace_internal::g_ring_capacity;
using trace_internal::g_sample_period;
using trace_internal::SteadyNowNs;
using trace_internal::tls_depth;
using trace_internal::tls_suppressed;
using trace_internal::tls_trace_id;

void Trace::Enable(bool on) {
  if (on) SteadyNowNs();  // pin the epoch before the first span
  trace_internal::g_enabled.store(on, std::memory_order_relaxed);
}

void Trace::SetRingCapacity(size_t slots) {
  size_t capacity = 64;
  while (capacity < slots) capacity <<= 1;
  g_ring_capacity.store(capacity, std::memory_order_relaxed);
}

void Trace::SetSamplePeriod(uint64_t period) {
  g_sample_period.store(period == 0 ? 1 : period,
                        std::memory_order_relaxed);
}

uint64_t Trace::sample_period() {
  return g_sample_period.load(std::memory_order_relaxed);
}

bool Trace::SampleTraceId(uint64_t id) {
  uint64_t period = sample_period();
  return period <= 1 || id % period == 0;
}

uint64_t Trace::NewTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Trace::CurrentTraceId() { return tls_trace_id; }

uint64_t Trace::NowNs() { return SteadyNowNs(); }

void Trace::Emit(const char* name, uint64_t start_ns, uint64_t end_ns,
                 uint64_t trace_id) {
  if (!trace_internal::Enabled()) return;
  trace_internal::ThreadBuffer* buf = CurrentBuffer();
  TraceEvent ev;
  ev.name = name;
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  ev.trace_id = trace_id;
  ev.tid = buf->tid;
  ev.depth = tls_depth;
  buf->Record(ev);
}

std::vector<TraceEvent> Trace::Collect() {
  std::vector<TraceEvent> out;
  BufferRegistry& reg = BufferRegistry::Get();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& buf : reg.all) buf->CollectInto(&out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::vector<TraceEvent> Trace::CollectTrace(uint64_t trace_id) {
  std::vector<TraceEvent> all = Collect();
  std::vector<TraceEvent> out;
  out.reserve(all.size());
  for (const TraceEvent& ev : all) {
    if (ev.trace_id == trace_id) out.push_back(ev);
  }
  return out;
}

void Trace::Clear() {
  BufferRegistry& reg = BufferRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& buf : reg.all) buf->ClearSlots();
}

void Trace::WriteChromeJson(JsonWriter& json,
                            const std::vector<TraceEvent>& events) {
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  char hex[32];
  for (const TraceEvent& ev : events) {
    json.BeginObject();
    json.Field("name", ev.name);
    json.Field("cat", "drepair");
    json.Field("ph", "X");
    json.Field("ts", static_cast<double>(ev.start_ns) / 1000.0);
    json.Field("dur", static_cast<double>(ev.dur_ns) / 1000.0);
    json.Field("pid", static_cast<int64_t>(1));
    json.Field("tid", static_cast<int64_t>(ev.tid));
    json.Key("args");
    json.BeginObject();
    if (ev.trace_id != 0) {
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(ev.trace_id));
      json.Field("trace_id", hex);
    }
    json.Field("depth", static_cast<int64_t>(ev.depth));
    for (int i = 0; i < 2; ++i) {
      if (ev.arg_keys[i] != nullptr) {
        json.Field(ev.arg_keys[i], static_cast<int64_t>(ev.arg_vals[i]));
      }
    }
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.Field("displayTimeUnit", "ms");
  json.EndObject();
}

std::string Trace::ChromeJson(const std::vector<TraceEvent>& events) {
  JsonWriter json;
  WriteChromeJson(json, events);
  return json.str();
}

TraceIdScope::TraceIdScope(uint64_t id)
    : saved_id_(tls_trace_id), saved_suppressed_(tls_suppressed) {
  tls_trace_id = id;
  tls_suppressed = !Trace::SampleTraceId(id);
}

TraceIdScope::~TraceIdScope() {
  tls_trace_id = saved_id_;
  tls_suppressed = saved_suppressed_;
}

#ifndef DR_NO_TRACING

void Span::Begin(const char* name) {
  if (tls_suppressed) return;
  active_ = true;
  name_ = name;
  trace_id_ = tls_trace_id;
  depth_ = tls_depth++;
  start_ns_ = SteadyNowNs();
}

void Span::End() {
  uint64_t end_ns = SteadyNowNs();
  --tls_depth;
  trace_internal::ThreadBuffer* buf = CurrentBuffer();
  TraceEvent ev;
  ev.name = name_;
  ev.start_ns = start_ns_;
  ev.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  ev.trace_id = trace_id_;
  ev.tid = buf->tid;
  ev.depth = depth_;
  ev.arg_keys[0] = arg_keys_[0];
  ev.arg_keys[1] = arg_keys_[1];
  ev.arg_vals[0] = arg_vals_[0];
  ev.arg_vals[1] = arg_vals_[1];
  buf->Record(ev);
}

#endif  // DR_NO_TRACING

}  // namespace deltarepair
