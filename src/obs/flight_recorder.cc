#include "obs/flight_recorder.h"

#include <cstdio>

#include "common/json_writer.h"

namespace deltarepair {

bool FlightRecorder::MaybeRecord(uint64_t trace_id, const char* kind,
                                 double seconds) {
  if (threshold_seconds_ <= 0 || capacity_ == 0) return false;
  if (trace_id == 0 || seconds < threshold_seconds_) return false;

  FlightRecord record;
  record.trace_id = trace_id;
  record.kind = kind;
  record.duration_seconds = seconds;
  record.spans = Trace::CollectTrace(trace_id);

  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
  return true;
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<FlightRecord>(records_.begin(), records_.end());
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void FlightRecorder::WriteJson(JsonWriter& json) const {
  std::vector<FlightRecord> records = Snapshot();
  json.BeginArray();
  char hex[32];
  for (const FlightRecord& record : records) {
    json.BeginObject();
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(record.trace_id));
    json.Field("trace_id", hex);
    json.Field("kind", record.kind);
    json.Field("duration_seconds", record.duration_seconds);
    json.Key("spans");
    json.BeginArray();
    for (const TraceEvent& ev : record.spans) {
      json.BeginObject();
      json.Field("name", ev.name);
      json.Field("start_us", static_cast<double>(ev.start_ns) / 1000.0);
      json.Field("dur_us", static_cast<double>(ev.dur_ns) / 1000.0);
      json.Field("tid", static_cast<int64_t>(ev.tid));
      json.Field("depth", static_cast<int64_t>(ev.depth));
      for (int i = 0; i < 2; ++i) {
        if (ev.arg_keys[i] != nullptr) {
          json.Field(ev.arg_keys[i], static_cast<int64_t>(ev.arg_vals[i]));
        }
      }
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
}

}  // namespace deltarepair
