#include "obs/stats_bridge.h"

#include "cqa/cqa.h"
#include "obs/metrics.h"
#include "repair/semantics.h"

namespace deltarepair {

void AddRepairStatsToMetrics(const RepairStats& stats) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  static Counter* assignments = reg.GetCounter(
      "drepair_engine_assignments_total",
      "Ground assignments enumerated by the grounder");
  static Counter* rounds = reg.GetCounter(
      "drepair_engine_fixpoint_rounds_total",
      "Semi-naive fixpoint rounds / provenance stages");
  static Counter* cnf_clauses =
      reg.GetCounter("drepair_engine_cnf_clauses_total",
                     "Stability CNF clauses constructed");
  static Counter* conflicts = reg.GetCounter(
      "drepair_sat_conflicts_total", "CDCL conflicts across all solves");
  static Counter* learned =
      reg.GetCounter("drepair_sat_learned_clauses_total",
                     "CDCL learned clauses across all solves");
  static Counter* restarts = reg.GetCounter("drepair_sat_restarts_total",
                                            "CDCL restarts across all solves");
  static Counter* solves = reg.GetCounter("drepair_sat_solve_calls_total",
                                          "Incremental SAT solve calls");
  static Counter* inprocess = reg.GetCounter(
      "drepair_sat_inprocess_runs_total", "Inter-solve inprocessing runs");
  static Counter* shared = reg.GetCounter(
      "drepair_sat_shared_clauses_total", "Portfolio lemmas adopted");
  static Histogram* eval = reg.GetHistogram(
      "drepair_repair_phase_seconds", "Repair phase wall time by phase",
      "phase", "eval");
  static Histogram* prov = reg.GetHistogram(
      "drepair_repair_phase_seconds", "Repair phase wall time by phase",
      "phase", "process_prov");
  static Histogram* solve = reg.GetHistogram(
      "drepair_repair_phase_seconds", "Repair phase wall time by phase",
      "phase", "solve");
  static Histogram* traverse = reg.GetHistogram(
      "drepair_repair_phase_seconds", "Repair phase wall time by phase",
      "phase", "traverse");

  assignments->Inc(stats.assignments);
  rounds->Inc(stats.iterations);
  cnf_clauses->Inc(stats.cnf_clauses);
  conflicts->Inc(stats.sat_conflicts);
  learned->Inc(stats.sat_learned_clauses);
  restarts->Inc(stats.sat_restarts);
  solves->Inc(stats.sat_solve_calls);
  inprocess->Inc(stats.sat_inprocess_runs);
  shared->Inc(stats.sat_shared_clauses);
  if (stats.eval_seconds > 0) eval->Observe(stats.eval_seconds);
  if (stats.process_prov_seconds > 0) {
    prov->Observe(stats.process_prov_seconds);
  }
  if (stats.solve_seconds > 0) solve->Observe(stats.solve_seconds);
  if (stats.traverse_seconds > 0) traverse->Observe(stats.traverse_seconds);
}

void AddCqaStatsToMetrics(const CqaStats& stats) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  static Counter* answers = reg.GetCounter("drepair_cqa_answers_total",
                                           "CQA answers evaluated");
  static Counter* certain = reg.GetCounter("drepair_cqa_certain_total",
                                           "Answers proven certain");
  static Counter* possible = reg.GetCounter("drepair_cqa_possible_total",
                                            "Answers proven possible");
  static Counter* undecided = reg.GetCounter(
      "drepair_cqa_undecided_total", "Answers left undecided in budget");
  static Counter* monomials = reg.GetCounter(
      "drepair_cqa_monomials_total", "Why-provenance monomials grounded");
  static Counter* sliced =
      reg.GetCounter("drepair_cqa_sliced_solve_calls_total",
                     "Entailment solves answered on a cone slice");
  static Counter* fallbacks =
      reg.GetCounter("drepair_cqa_slice_fallbacks_total",
                     "Entailment verdicts that needed the full CNF");
  static Counter* scrubs = reg.GetCounter(
      "drepair_cqa_scrub_runs_total", "Warm entailment solver compactions");

  answers->Inc(stats.answers);
  certain->Inc(stats.certain_answers);
  possible->Inc(stats.possible_answers);
  undecided->Inc(stats.undecided_answers);
  monomials->Inc(stats.monomials);
  sliced->Inc(stats.slice.sliced_solve_calls);
  fallbacks->Inc(stats.slice.slice_fallbacks);
  scrubs->Inc(stats.slice.scrub_runs);
  AddRepairStatsToMetrics(stats.repair);
}

}  // namespace deltarepair
