// Low-overhead in-process tracing: RAII spans feeding lock-free
// per-thread ring buffers, exported as Chrome trace_event JSON.
//
// Cost model. Every instrumented call site constructs a Span on the
// stack; when tracing is globally off (the default) the constructor is
// one relaxed atomic load and a branch — no clock read, no allocation,
// no TLS write — so instrumentation can stay in hot paths permanently
// (the bench gate in bench_micro_engine holds this to <= 2% of the
// grounder+fixpoint loop). When tracing is on, finishing a span writes
// one fixed-size record into the current thread's ring buffer under a
// per-slot seqlock: no locks, no allocation after the buffer's one-time
// setup, wait-free for the recording thread. Collection (trace dump,
// flight recorder) walks every registered ring and keeps the slots
// whose seqlock was stable — a torn slot is dropped, never blocked on.
//
// Span names and argument keys must be string literals (or otherwise
// have static storage duration): records keep the pointer, not a copy.
//
// Trace ids. A thread has a current trace id (0 = none) installed by
// TraceIdScope; spans inherit it, and Collect(trace_id) filters on it —
// this is how one server request's spans are picked out of the shared
// rings. Cross-thread propagation is by value: capture CurrentTraceId()
// before spawning workers and re-install it in each (the portfolio race
// and the CQA/batch worker pools do this). Sampling composes with the
// id: TraceIdScope suppresses recording when its id fails
// SampleTraceId(), so a server can trace 1-in-N requests.
//
// Compile-out: building with -DDR_NO_TRACING turns Span into an empty
// shell (and the DR_* macros into nothing) for deployments that want
// even the disabled-mode branch gone.
#ifndef DELTAREPAIR_OBS_TRACE_H_
#define DELTAREPAIR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace deltarepair {

class JsonWriter;

/// One completed span as read back out of the rings. `name` and
/// `arg_keys` point at static-storage strings.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;  // relative to the process trace epoch
  uint64_t dur_ns = 0;
  uint64_t trace_id = 0;  // 0 = recorded outside any TraceIdScope
  uint32_t tid = 0;       // small sequential id of the recording thread
  uint32_t depth = 0;     // span-stack depth at the recording site
  const char* arg_keys[2] = {nullptr, nullptr};
  uint64_t arg_vals[2] = {0, 0};
};

namespace trace_internal {
extern std::atomic<bool> g_enabled;
inline bool Enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}
}  // namespace trace_internal

/// Process-wide tracing control and collection surface. All static;
/// every method is thread-safe.
class Trace {
 public:
  /// Master switch. Off by default; spans recorded while off cost one
  /// relaxed load. Turning it off does not clear already-recorded data.
  static void Enable(bool on);
  static bool enabled() { return trace_internal::Enabled(); }

  /// Ring capacity in slots per thread (rounded up to a power of two,
  /// minimum 64). Applies to buffers created after the call; the
  /// default is 4096 (~320KB per recording thread).
  static void SetRingCapacity(size_t slots);

  /// Request sampling: TraceIdScope records only ids with
  /// id % period == 0 (period <= 1 records everything). Spans outside
  /// any scope are always recorded while tracing is on.
  static void SetSamplePeriod(uint64_t period);
  static uint64_t sample_period();
  static bool SampleTraceId(uint64_t id);

  /// Process-unique nonzero ids for requests that arrive without one.
  static uint64_t NewTraceId();
  /// The current thread's trace id (0 outside any TraceIdScope).
  static uint64_t CurrentTraceId();

  /// Nanoseconds since the process trace epoch (steady clock).
  static uint64_t NowNs();

  /// Manually injects a completed span — for durations measured across
  /// threads, where RAII can't hold the interval (e.g. the server's
  /// accept-to-dequeue queue wait). Only records while enabled.
  static void Emit(const char* name, uint64_t start_ns, uint64_t end_ns,
                   uint64_t trace_id);

  /// Snapshot of every stable recorded span, oldest first. The filtered
  /// overload keeps only one trace id's spans.
  static std::vector<TraceEvent> Collect();
  static std::vector<TraceEvent> CollectTrace(uint64_t trace_id);

  /// Drops all recorded spans (rings stay registered).
  static void Clear();

  /// Chrome trace_event JSON ({"traceEvents":[...]}; load via
  /// chrome://tracing or https://ui.perfetto.dev).
  static void WriteChromeJson(JsonWriter& json,
                              const std::vector<TraceEvent>& events);
  static std::string ChromeJson(const std::vector<TraceEvent>& events);
};

/// Installs `id` as the current thread's trace id for the scope's
/// lifetime (restoring the previous id on exit) and applies the
/// sampling verdict: spans inside a scope whose id fails
/// Trace::SampleTraceId are not recorded.
class TraceIdScope {
 public:
  explicit TraceIdScope(uint64_t id);
  ~TraceIdScope();
  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  uint64_t saved_id_;
  bool saved_suppressed_;
};

#ifndef DR_NO_TRACING

/// RAII span: records [construction, destruction) into the current
/// thread's ring when tracing is enabled. Up to two numeric arguments
/// ride along (keys must be string literals). Must be stack-scoped on
/// one thread.
class Span {
 public:
  explicit Span(const char* name) {
    if (trace_internal::Enabled()) Begin(name);
  }
  ~Span() {
    if (active_) End();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// No-op when the span is not recording.
  void SetArg(const char* key, uint64_t value) {
    if (!active_) return;
    if (arg_keys_[0] == nullptr) {
      arg_keys_[0] = key;
      arg_vals_[0] = value;
    } else {
      arg_keys_[1] = key;
      arg_vals_[1] = value;
    }
  }
  bool active() const { return active_; }

 private:
  void Begin(const char* name);
  void End();

  bool active_ = false;
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t trace_id_ = 0;
  uint32_t depth_ = 0;
  const char* arg_keys_[2] = {nullptr, nullptr};
  uint64_t arg_vals_[2] = {0, 0};
};

#else  // DR_NO_TRACING

class Span {
 public:
  explicit Span(const char*) {}
  void SetArg(const char*, uint64_t) {}
  bool active() const { return false; }
};

#endif  // DR_NO_TRACING

}  // namespace deltarepair

#endif  // DELTAREPAIR_OBS_TRACE_H_
