#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/status.h"

namespace deltarepair {

namespace {

// Doubles ride in atomic<uint64_t> bit patterns (C++17 has no atomic
// double fetch_add).
uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t old = bits->load(std::memory_order_relaxed);
  while (!bits->compare_exchange_weak(old, DoubleBits(BitsDouble(old) + delta),
                                      std::memory_order_relaxed)) {
  }
}

// Prometheus renders le bounds with %g (1e-06, 0.000128, 1.048576...).
void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  out->append(buf);
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out->append(buf);
}

}  // namespace

uint64_t Gauge::Encode(double v) { return DoubleBits(v); }
double Gauge::Decode(uint64_t bits) { return BitsDouble(bits); }

double Histogram::UpperBound(int bucket) {
  return 1e-6 * static_cast<double>(uint64_t{1} << bucket);
}

void Histogram::Observe(double v) {
  if (std::isnan(v)) return;
  int bucket = kNumBuckets;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (v <= UpperBound(i)) {
      bucket = i;
      break;
    }
  }
  if (bucket < kNumBuckets) {
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  } else {
    inf_bucket_.fetch_add(1, std::memory_order_relaxed);
  }
  AtomicAddDouble(&sum_bits_, v < 0 ? 0 : v);
}

uint64_t Histogram::count() const {
  uint64_t total = inf_bucket_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  return BitsDouble(sum_bits_.load(std::memory_order_relaxed));
}

uint64_t Histogram::CumulativeCount(int bucket) const {
  uint64_t total = 0;
  for (int i = 0; i <= bucket && i < kNumBuckets; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* kRegistry = new MetricsRegistry();
  return *kRegistry;
}

MetricsRegistry::Series* MetricsRegistry::GetSeries(
    const std::string& name, const std::string& help, Kind kind,
    const std::string& label_key, const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.emplace(name, Family{});
  Family& family = it->second;
  if (inserted) {
    family.help = help;
    family.kind = kind;
    family.label_key = label_key;
  } else {
    DR_CHECK_MSG(family.kind == kind && family.label_key == label_key,
                 "metric family re-registered with a different shape");
  }
  for (const auto& series : family.series) {
    if (series->label_value == label_value) return series.get();
  }
  family.series.push_back(std::make_unique<Series>());
  Series* series = family.series.back().get();
  series->label_value = label_value;
  switch (kind) {
    case Kind::kCounter:
      series->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      series->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      series->histogram = std::make_unique<Histogram>();
      break;
  }
  return series;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return GetSeries(name, help, Kind::kCounter, "", "")->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return GetSeries(name, help, Kind::kGauge, "", "")->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  return GetSeries(name, help, Kind::kHistogram, "", "")->histogram.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& label_key,
                                     const std::string& label_value) {
  return GetSeries(name, help, Kind::kCounter, label_key, label_value)
      ->counter.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const std::string& label_key,
                                         const std::string& label_value) {
  return GetSeries(name, help, Kind::kHistogram, label_key, label_value)
      ->histogram.get();
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, family] : families_) {
    out.append("# HELP ").append(name).append(" ").append(family.help);
    out.push_back('\n');
    out.append("# TYPE ").append(name).append(" ");
    switch (family.kind) {
      case Kind::kCounter:
        out.append("counter");
        break;
      case Kind::kGauge:
        out.append("gauge");
        break;
      case Kind::kHistogram:
        out.append("histogram");
        break;
    }
    out.push_back('\n');

    // Deterministic order: series sorted by label value.
    std::vector<const Series*> ordered;
    ordered.reserve(family.series.size());
    for (const auto& series : family.series) ordered.push_back(series.get());
    std::sort(ordered.begin(), ordered.end(),
              [](const Series* a, const Series* b) {
                return a->label_value < b->label_value;
              });

    for (const Series* series : ordered) {
      std::string label;
      if (!family.label_key.empty()) {
        label = family.label_key + "=\"" + series->label_value + "\"";
      }
      switch (family.kind) {
        case Kind::kCounter: {
          out.append(name);
          if (!label.empty()) out.append("{").append(label).append("}");
          out.push_back(' ');
          AppendUint(&out, series->counter->value());
          out.push_back('\n');
          break;
        }
        case Kind::kGauge: {
          out.append(name);
          if (!label.empty()) out.append("{").append(label).append("}");
          out.push_back(' ');
          AppendDouble(&out, series->gauge->value());
          out.push_back('\n');
          break;
        }
        case Kind::kHistogram: {
          const Histogram* h = series->histogram.get();
          uint64_t total = h->count();
          std::string prefix = label.empty() ? "" : label + ",";
          for (int i = 0; i < Histogram::kNumBuckets; ++i) {
            out.append(name).append("_bucket{").append(prefix).append(
                "le=\"");
            AppendDouble(&out, Histogram::UpperBound(i));
            out.append("\"} ");
            AppendUint(&out, h->CumulativeCount(i));
            out.push_back('\n');
          }
          out.append(name).append("_bucket{").append(prefix).append(
              "le=\"+Inf\"} ");
          AppendUint(&out, total);
          out.push_back('\n');
          out.append(name).append("_sum");
          if (!label.empty()) out.append("{").append(label).append("}");
          out.push_back(' ');
          AppendDouble(&out, h->sum());
          out.push_back('\n');
          out.append(name).append("_count");
          if (!label.empty()) out.append("{").append(label).append("}");
          out.push_back(' ');
          AppendUint(&out, total);
          out.push_back('\n');
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace deltarepair
