// Slow-request flight recorder: when a served request's latency crosses
// a threshold, its full span tree (pulled out of the tracing rings by
// trace id) is retained in a bounded in-memory log, dumpable through
// the server's stats frame. This answers "what did the last slow
// request spend its time on?" without tracing everything to disk.
//
// Only useful while tracing is enabled — with tracing off there are no
// spans to retain, and MaybeRecord keeps only the metadata row.
#ifndef DELTAREPAIR_OBS_FLIGHT_RECORDER_H_
#define DELTAREPAIR_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace deltarepair {

/// One retained slow request.
struct FlightRecord {
  uint64_t trace_id = 0;
  std::string kind;  // request type: "repair" | "cqa" | "update" | ...
  double duration_seconds = 0;
  std::vector<TraceEvent> spans;  // the request's span tree, oldest first
};

class FlightRecorder {
 public:
  /// threshold_seconds <= 0 disables recording entirely.
  FlightRecorder(size_t capacity, double threshold_seconds)
      : capacity_(capacity), threshold_seconds_(threshold_seconds) {}

  /// Called once per completed request. Retains the request (evicting
  /// the oldest beyond capacity) iff recording is enabled, the request
  /// had a trace id, and it ran at least the threshold. Returns whether
  /// it was retained.
  bool MaybeRecord(uint64_t trace_id, const char* kind, double seconds);

  std::vector<FlightRecord> Snapshot() const;
  size_t size() const;

  double threshold_seconds() const { return threshold_seconds_; }
  size_t capacity() const { return capacity_; }

  /// The retained log as a JSON array (per record: trace id, kind,
  /// duration, span list with microsecond offsets).
  void WriteJson(JsonWriter& json) const;

 private:
  const size_t capacity_;
  const double threshold_seconds_;
  mutable std::mutex mu_;
  std::deque<FlightRecord> records_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_OBS_FLIGHT_RECORDER_H_
