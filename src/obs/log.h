// Process logging with two faces:
//
//  * Plain mode (default): Startup() lines print to stdout exactly as
//    the tools always have (scripts grep them), and per-request Event()
//    lines are silent — today's output shape, unchanged.
//  * Structured mode (drepair_server --log-level=LEVEL): every line
//    goes to stderr as `<RFC3339-ms UTC> LEVEL trace=<16-hex|-> msg`,
//    filtered by the level threshold; Startup() lines log at INFO.
//
// Event() is cheap when filtered: one relaxed load and a compare before
// any formatting.
#ifndef DELTAREPAIR_OBS_LOG_H_
#define DELTAREPAIR_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace deltarepair {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

class Log {
 public:
  /// Switches to structured mode at the given threshold. Never called =
  /// plain mode.
  static void SetStructured(LogLevel level);
  static bool structured();
  static LogLevel level();

  /// "debug" | "info" | "warn" | "error" | "off" (case-sensitive).
  /// Returns false on anything else.
  static bool ParseLevel(const std::string& text, LogLevel* out);
  static const char* LevelName(LogLevel level);

  /// Tool lifecycle line: plain mode printf("%s\n") to stdout,
  /// structured mode an INFO line (trace id 0).
  static void Startup(const char* fmt, ...)
      __attribute__((format(printf, 1, 2)));

  /// Request-scoped line: silent in plain mode; in structured mode
  /// emitted iff `level` passes the threshold.
  static void Event(LogLevel level, uint64_t trace_id, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  static bool Enabled(LogLevel lvl) {
    return structured() && static_cast<int>(lvl) >= static_cast<int>(level());
  }
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_OBS_LOG_H_
