#include "workload/error_injector.h"

#include <algorithm>
#include <unordered_set>

#include "common/random.h"
#include "common/string_util.h"

namespace deltarepair {

Database InjectedTable::MakeDb() const {
  Database db;
  uint32_t rel = db.AddRelation(schema);
  for (const Tuple& t : rows) db.Insert(rel, t);
  return db;
}

InjectedTable MakeInjectedAuthorTable(const ErrorInjectorConfig& base) {
  ErrorInjectorConfig config = base;
  if (config.num_orgs == 0) {
    config.num_orgs = std::max<size_t>(2, config.num_rows / 5);
  }
  Rng rng(config.seed);
  InjectedTable out;
  out.schema = MakeSchema("Author", {"aid", "name", "oid", "organization"},
                          "isis");
  out.rows.reserve(config.num_rows);
  for (size_t i = 0; i < config.num_rows; ++i) {
    int64_t aid = static_cast<int64_t>(i + 1);
    int64_t oid = static_cast<int64_t>(i % config.num_orgs + 1);
    out.rows.push_back({Value(aid),
                        Value(StrFormat("name%zu", i % config.name_pool)),
                        Value(oid), Value(StrFormat("org%lld",
                                                    static_cast<long long>(
                                                        oid)))});
  }
  out.clean_rows = out.rows;

  DR_CHECK(config.num_errors <= config.num_rows);
  // Corrupt one cell in each of num_errors distinct rows.
  std::unordered_set<size_t> used;
  while (out.errors.size() < config.num_errors) {
    size_t r = static_cast<size_t>(rng.NextBounded(config.num_rows));
    if (!used.insert(r).second) continue;
    InjectedCell cell;
    cell.row = r;
    switch (rng.NextBounded(3)) {
      case 0: {
        // Duplicate another row's aid: violates DC1/DC2/DC3 (same aid,
        // different oid/name/organization).
        cell.column = kAuthorAid;
        size_t other = static_cast<size_t>(rng.NextBounded(config.num_rows));
        if (other == r) other = (other + 1) % config.num_rows;
        cell.clean_value = out.rows[r][kAuthorAid];
        out.rows[r][kAuthorAid] = out.clean_rows[other][kAuthorAid];
        break;
      }
      case 1: {
        // Wrong organization name: violates DC4 against same-oid rows.
        cell.column = kAuthorOrgName;
        cell.clean_value = out.rows[r][kAuthorOrgName];
        int64_t wrong_oid = static_cast<int64_t>(
            rng.NextBounded(config.num_orgs) + 1);
        if (Value(StrFormat("org%lld", static_cast<long long>(wrong_oid))) ==
            cell.clean_value) {
          wrong_oid = wrong_oid % static_cast<int64_t>(config.num_orgs) + 1;
        }
        out.rows[r][kAuthorOrgName] =
            Value(StrFormat("org%lld", static_cast<long long>(wrong_oid)));
        break;
      }
      default: {
        // Wrong oid: the organization name no longer matches the oid group
        // (DC4 violation against the new group).
        cell.column = kAuthorOid;
        cell.clean_value = out.rows[r][kAuthorOid];
        int64_t wrong_oid = static_cast<int64_t>(
            rng.NextBounded(config.num_orgs) + 1);
        if (wrong_oid == cell.clean_value.AsInt()) {
          wrong_oid = wrong_oid % static_cast<int64_t>(config.num_orgs) + 1;
        }
        out.rows[r][kAuthorOid] = Value(wrong_oid);
        break;
      }
    }
    out.errors.push_back(std::move(cell));
  }
  return out;
}

}  // namespace deltarepair
