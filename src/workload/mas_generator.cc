#include "workload/mas_generator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"
#include "common/string_util.h"

namespace deltarepair {

MasConfig MasConfig::Scaled(double factor) const {
  MasConfig out = *this;
  auto scale = [factor](size_t v) {
    return static_cast<size_t>(std::max(1.0, static_cast<double>(v) * factor));
  };
  out.num_orgs = scale(num_orgs);
  out.num_authors = scale(num_authors);
  out.num_pubs = scale(num_pubs);
  out.name_pool = scale(name_pool);
  return out;
}

MasData GenerateMas(const MasConfig& config) {
  Rng rng(config.seed);
  MasData out;
  Database& db = out.db;
  uint32_t org = db.AddRelation(
      MakeSchema(kMasOrganization, {"oid", "name"}, "is"));
  uint32_t author = db.AddRelation(
      MakeSchema(kMasAuthor, {"aid", "name", "oid"}, "isi"));
  uint32_t writes = db.AddRelation(
      MakeSchema(kMasWrites, {"aid", "pid"}, "ii"));
  uint32_t pub = db.AddRelation(
      MakeSchema(kMasPublication, {"pid", "title"}, "is"));
  uint32_t cite = db.AddRelation(
      MakeSchema(kMasCite, {"citing", "cited"}, "ii"));

  for (size_t i = 1; i <= config.num_orgs; ++i) {
    db.Insert(org, {Value(static_cast<int64_t>(i)),
                    Value(StrFormat("org%zu", i))});
  }

  std::vector<size_t> name_count(config.name_pool, 0);
  std::unordered_map<int64_t, size_t> org_count;
  for (size_t i = 1; i <= config.num_authors; ++i) {
    size_t name_id = static_cast<size_t>(
        rng.NextZipf(config.name_pool, config.org_skew));
    int64_t oid = static_cast<int64_t>(
        rng.NextZipf(config.num_orgs, config.org_skew) + 1);
    ++name_count[name_id];
    ++org_count[oid];
    db.Insert(author, {Value(static_cast<int64_t>(i)),
                       Value(StrFormat("name%zu", name_id)), Value(oid)});
  }

  std::unordered_map<int64_t, size_t> writes_count;
  std::unordered_map<int64_t, size_t> cited_count;
  std::unordered_set<uint64_t> seen_edges;
  for (size_t p = 1; p <= config.num_pubs; ++p) {
    db.Insert(pub, {Value(static_cast<int64_t>(p)),
                    Value(StrFormat("title%zu", p))});
    int num_writers =
        1 + static_cast<int>(rng.NextBounded(
                static_cast<uint64_t>(config.max_writes_per_pub)));
    for (int w = 0; w < num_writers; ++w) {
      int64_t aid = static_cast<int64_t>(
          rng.NextZipf(config.num_authors, 0.5) + 1);
      uint64_t key = (static_cast<uint64_t>(aid) << 32) | p;
      if (!seen_edges.insert(key).second) continue;
      db.Insert(writes, {Value(aid), Value(static_cast<int64_t>(p))});
      ++writes_count[aid];
    }
    int num_cites = static_cast<int>(rng.NextBounded(
        static_cast<uint64_t>(config.max_cites_per_pub) + 1));
    for (int c = 0; c < num_cites; ++c) {
      int64_t cited = static_cast<int64_t>(
          rng.NextZipf(config.num_pubs, config.cite_skew) + 1);
      if (cited == static_cast<int64_t>(p)) continue;
      InsertResult r = db.InsertChecked(cite,
          {Value(static_cast<int64_t>(p)), Value(cited)});
      if (r.inserted) ++cited_count[cited];
    }
  }

  // Pick the hubs that parameterize the paper's programs.
  MasHubs& hubs = out.hubs;
  size_t best = 0;
  for (const auto& [aid, cnt] : writes_count) {
    if (cnt > best || (cnt == best && aid < hubs.hub_author_aid)) {
      best = cnt;
      hubs.hub_author_aid = aid;
    }
  }
  size_t best_name = 0;
  for (size_t i = 0; i < name_count.size(); ++i) {
    if (name_count[i] > best_name) {
      best_name = name_count[i];
      hubs.common_name = StrFormat("name%zu", i);
    }
  }
  size_t best_org = 0;
  for (const auto& [oid, cnt] : org_count) {
    if (cnt > best_org || (cnt == best_org && oid < hubs.hub_org_oid)) {
      best_org = cnt;
      hubs.hub_org_oid = oid;
    }
  }
  size_t best_cited = 0;
  for (const auto& [pid, cnt] : cited_count) {
    if (cnt > best_cited || (cnt == best_cited && pid < hubs.hub_pub_pid)) {
      best_cited = cnt;
      hubs.hub_pub_pid = pid;
    }
  }
  hubs.mid_pid = static_cast<int64_t>(config.num_pubs / 2);
  return out;
}

}  // namespace deltarepair
