#include "workload/tpch_generator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"
#include "common/string_util.h"

namespace deltarepair {

TpchConfig TpchConfig::Scaled(double factor) const {
  TpchConfig out = *this;
  auto scale = [factor](size_t v) {
    return static_cast<size_t>(std::max(1.0, static_cast<double>(v) * factor));
  };
  out.num_suppliers = scale(num_suppliers);
  out.num_customers = scale(num_customers);
  out.num_parts = scale(num_parts);
  out.num_orders = scale(num_orders);
  return out;
}

TpchData GenerateTpch(const TpchConfig& config) {
  Rng rng(config.seed);
  TpchData out;
  Database& db = out.db;
  uint32_t region =
      db.AddRelation(MakeSchema(kTpchRegion, {"rk", "name"}, "is"));
  uint32_t nation =
      db.AddRelation(MakeSchema(kTpchNation, {"nk", "name", "rk"}, "isi"));
  uint32_t supplier =
      db.AddRelation(MakeSchema(kTpchSupplier, {"sk", "name", "nk"}, "isi"));
  uint32_t customer =
      db.AddRelation(MakeSchema(kTpchCustomer, {"ck", "name", "nk"}, "isi"));
  uint32_t part = db.AddRelation(MakeSchema(kTpchPart, {"pk", "name"}, "is"));
  uint32_t partsupp =
      db.AddRelation(MakeSchema(kTpchPartSupp, {"sk", "pk"}, "ii"));
  uint32_t orders = db.AddRelation(MakeSchema(kTpchOrders, {"ok", "ck"}, "ii"));
  uint32_t lineitem =
      db.AddRelation(MakeSchema(kTpchLineitem, {"ok", "sk", "pk"}, "iii"));

  for (size_t i = 1; i <= config.num_regions; ++i) {
    db.Insert(region, {Value(static_cast<int64_t>(i)),
                       Value(StrFormat("region%zu", i))});
  }
  for (size_t i = 1; i <= config.num_nations; ++i) {
    db.Insert(nation,
              {Value(static_cast<int64_t>(i)), Value(StrFormat("nation%zu", i)),
               Value(static_cast<int64_t>(i % config.num_regions + 1))});
  }
  std::unordered_map<int64_t, size_t> suppliers_per_nation;
  std::unordered_map<int64_t, size_t> customers_per_nation;
  for (size_t i = 1; i <= config.num_suppliers; ++i) {
    int64_t nk =
        static_cast<int64_t>(rng.NextBounded(config.num_nations) + 1);
    ++suppliers_per_nation[nk];
    db.Insert(supplier, {Value(static_cast<int64_t>(i)),
                         Value(StrFormat("supplier%zu", i)), Value(nk)});
  }
  for (size_t i = 1; i <= config.num_customers; ++i) {
    int64_t nk =
        static_cast<int64_t>(rng.NextBounded(config.num_nations) + 1);
    ++customers_per_nation[nk];
    db.Insert(customer, {Value(static_cast<int64_t>(i)),
                         Value(StrFormat("customer%zu", i)), Value(nk)});
  }
  for (size_t i = 1; i <= config.num_parts; ++i) {
    db.Insert(part, {Value(static_cast<int64_t>(i)),
                     Value(StrFormat("part%zu", i))});
  }
  std::unordered_set<uint64_t> ps_seen;
  std::vector<std::vector<int64_t>> suppliers_of_part(config.num_parts + 1);
  for (size_t p = 1; p <= config.num_parts; ++p) {
    for (int s = 0; s < config.partsupp_per_part; ++s) {
      int64_t sk =
          static_cast<int64_t>(rng.NextBounded(config.num_suppliers) + 1);
      uint64_t key = (static_cast<uint64_t>(sk) << 32) | p;
      if (!ps_seen.insert(key).second) continue;
      db.Insert(partsupp, {Value(sk), Value(static_cast<int64_t>(p))});
      suppliers_of_part[p].push_back(sk);
    }
  }
  for (size_t o = 1; o <= config.num_orders; ++o) {
    int64_t ck =
        static_cast<int64_t>(rng.NextBounded(config.num_customers) + 1);
    db.Insert(orders, {Value(static_cast<int64_t>(o)), Value(ck)});
    int items = 1 + static_cast<int>(rng.NextBounded(
                        static_cast<uint64_t>(config.max_lineitems_per_order)));
    for (int li = 0; li < items; ++li) {
      int64_t pk =
          static_cast<int64_t>(rng.NextBounded(config.num_parts) + 1);
      // Lineitems reference a supplier that actually supplies the part
      // when one exists (dbgen-like referential structure).
      const auto& sups = suppliers_of_part[static_cast<size_t>(pk)];
      int64_t sk = sups.empty()
                       ? static_cast<int64_t>(
                             rng.NextBounded(config.num_suppliers) + 1)
                       : sups[rng.NextBounded(sups.size())];
      db.InsertChecked(lineitem,
          {Value(static_cast<int64_t>(o)), Value(sk), Value(pk)});
    }
  }

  out.consts.supplier_cut =
      std::max<int64_t>(2, static_cast<int64_t>(config.num_suppliers / 10));
  out.consts.order_cut =
      std::max<int64_t>(2, static_cast<int64_t>(config.num_orders / 20));
  // T5 wants a nation where step semantics can delete the smaller side:
  // pick the nation with suppliers < customers maximizing the gap.
  int64_t best_gap = INT64_MIN;
  out.consts.nation_key = 1;
  for (size_t nk = 1; nk <= config.num_nations; ++nk) {
    int64_t s =
        static_cast<int64_t>(suppliers_per_nation[static_cast<int64_t>(nk)]);
    int64_t c =
        static_cast<int64_t>(customers_per_nation[static_cast<int64_t>(nk)]);
    if (s == 0 || c == 0 || s >= c) continue;
    if (c - s > best_gap) {
      best_gap = c - s;
      out.consts.nation_key = static_cast<int64_t>(nk);
    }
  }
  return out;
}

}  // namespace deltarepair
