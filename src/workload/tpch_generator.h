// Simplified TPC-H-shaped generator [50]: the eight tables with the join
// keys the paper's programs T1-T6 use (other columns elided), deterministic
// under a seed. Replaces dbgen (see DESIGN.md substitutions).
#ifndef DELTAREPAIR_WORKLOAD_TPCH_GENERATOR_H_
#define DELTAREPAIR_WORKLOAD_TPCH_GENERATOR_H_

#include "relation/database.h"

namespace deltarepair {

struct TpchConfig {
  uint64_t seed = 7;
  size_t num_regions = 5;
  size_t num_nations = 25;
  size_t num_suppliers = 120;
  size_t num_customers = 450;
  size_t num_parts = 500;
  int partsupp_per_part = 3;
  size_t num_orders = 900;
  int max_lineitems_per_order = 5;

  TpchConfig Scaled(double factor) const;
};

/// Constants the TPC-H programs plug into selections.
struct TpchConsts {
  int64_t supplier_cut = 0;  // sk < supplier_cut selections (~10%)
  int64_t order_cut = 0;     // ok < order_cut selections (~5%)
  int64_t nation_key = 0;    // nation with suppliers < customers (T5)
};

struct TpchData {
  Database db;
  TpchConsts consts;
};

inline constexpr const char* kTpchRegion = "Region";
inline constexpr const char* kTpchNation = "Nation";
inline constexpr const char* kTpchSupplier = "Supplier";
inline constexpr const char* kTpchCustomer = "Customer";
inline constexpr const char* kTpchPart = "Part";
inline constexpr const char* kTpchPartSupp = "PartSupp";
inline constexpr const char* kTpchOrders = "Orders";
inline constexpr const char* kTpchLineitem = "Lineitem";

TpchData GenerateTpch(const TpchConfig& config);

}  // namespace deltarepair

#endif  // DELTAREPAIR_WORKLOAD_TPCH_GENERATOR_H_
