#include "workload/programs.h"

#include "common/string_util.h"
#include "datalog/parser.h"

namespace deltarepair {

namespace {

Program MustParse(std::string name, const std::string& text) {
  StatusOr<Program> program = ParseProgram(text);
  DR_CHECK_MSG(program.ok(), "bad program " + name + ": " +
                                 program.status().ToString() + "\n" + text);
  program->set_name(std::move(name));
  return std::move(program).value();
}

}  // namespace

Program MasProgram(int num, const MasHubs& hubs) {
  const long long aid = hubs.hub_author_aid;
  const long long oid = hubs.hub_org_oid;
  const long long pid = hubs.hub_pub_pid;
  const long long mid = hubs.mid_pid;
  const std::string& name = hubs.common_name;
  std::string text;
  switch (num) {
    case 1:
      text = StrFormat(
          "~Author(a, n, o) :- Author(a, n, o), n = '%s'.\n"
          "~Writes(a, p) :- Writes(a, p), a = %lld.\n",
          name.c_str(), aid);
      break;
    case 2:
      text = StrFormat(
          "~Writes(a, p) :- Writes(a, p), Author(a, n, o), a = %lld.\n", aid);
      break;
    case 3:
      text = StrFormat(
          "~Author(a, n, o) :- Writes(a, p), Author(a, n, o), a = %lld.\n"
          "~Writes(a, p) :- Writes(a, p), Author(a, n, o), a = %lld.\n",
          aid, aid);
      break;
    case 4:
      text = StrFormat(
          "~Author(a, n, o) :- Organization(o, n2), Author(a, n, o), "
          "o = %lld.\n"
          "~Organization(o, n2) :- Organization(o, n2), Author(a, n, o), "
          "o = %lld.\n",
          oid, oid);
      break;
    case 5:
      text = StrFormat(
          "~Author(a, n, o) :- Author(a, n, o), n = '%s'.\n"
          "~Writes(a, p) :- Writes(a, p), ~Author(a, n, o).\n",
          name.c_str());
      break;
    case 6:
      text = StrFormat(
          "~Author(a, n, o) :- Author(a, n, o), n = '%s'.\n"
          "~Writes(a, p) :- Writes(a, p), ~Author(a, n, o).\n"
          "~Publication(p, t) :- Publication(p, t), ~Writes(a, p), "
          "Author(a, n, o).\n",
          name.c_str());
      break;
    case 7:
      text = StrFormat(
          "~Publication(p, t) :- Publication(p, t), p = %lld.\n"
          "~Cite(p, d) :- Cite(p, d), ~Publication(p, t).\n"
          "~Cite(g, p) :- Cite(g, p), ~Publication(p, t).\n",
          pid);
      break;
    case 8:
      text = StrFormat(
          "~Author(a, n, o) :- Writes(a, p), Author(a, n, o), a = %lld.\n"
          "~Writes(a, p) :- Writes(a, p), Author(a, n, o), a = %lld.\n"
          "~Publication(p, t) :- Publication(p, t), ~Writes(a, p), "
          "Author(a, n, o).\n"
          "~Publication(p, t) :- Publication(p, t), Writes(a, p), "
          "~Author(a, n, o).\n",
          aid, aid);
      break;
    case 9:
      text = StrFormat(
          "~Author(a, n, o) :- Author(a, n, o), n = '%s'.\n"
          "~Writes(a, p) :- Writes(a, p), ~Author(a, n, o).\n"
          "~Publication(p, t) :- Publication(p, t), ~Writes(a, p).\n"
          "~Cite(p, d) :- Cite(p, d), ~Publication(p, t), p < %lld.\n",
          name.c_str(), mid);
      break;
    case 10:
      text = StrFormat(
          "~Organization(o, n2) :- Organization(o, n2), o = %lld.\n"
          "~Author(a, n, o) :- Author(a, n, o), ~Organization(o, n2).\n"
          "~Writes(a, p) :- Writes(a, p), ~Author(a, n, o).\n"
          "~Publication(p, t) :- Publication(p, t), ~Writes(a, p).\n",
          oid);
      break;
    case 11:
      text = "~Cite(c1, c2) :- Cite(c1, c2).\n";
      break;
    case 12:
      text =
          "~Cite(c1, c2) :- Cite(c1, c2), Publication(c1, t).\n";
      break;
    case 13:
      text =
          "~Cite(c1, c2) :- Cite(c1, c2), Publication(c1, t), "
          "Writes(a, c1).\n";
      break;
    case 14:
      text =
          "~Cite(c1, c2) :- Cite(c1, c2), Publication(c1, t), "
          "Writes(a, c1), Author(a, n, o).\n";
      break;
    case 15:
      text =
          "~Cite(c1, c2) :- Cite(c1, c2), Publication(c1, t), "
          "Writes(a, c1), Author(a, n, o), Organization(o, n2).\n";
      break;
    case 16:
    case 17:
    case 18:
    case 19:
    case 20: {
      text = StrFormat(
          "~Organization(o, n2) :- Organization(o, n2), o = %lld.\n", oid);
      if (num >= 17) {
        text +=
            "~Author(a, n, o) :- Author(a, n, o), ~Organization(o, n2).\n";
      }
      if (num >= 18) {
        text += "~Writes(a, p) :- Writes(a, p), ~Author(a, n, o).\n";
      }
      if (num >= 19) {
        text +=
            "~Publication(p, t) :- Publication(p, t), ~Writes(a, p).\n";
      }
      if (num >= 20) {
        text += "~Cite(g, p) :- Cite(g, p), ~Publication(p, t).\n";
      }
      break;
    }
    default:
      DR_CHECK_MSG(false, StrFormat("unknown MAS program %d", num));
  }
  return MustParse(StrFormat("mas-%d", num), text);
}

std::vector<int> AllMasPrograms() {
  std::vector<int> out;
  for (int i = 1; i <= 20; ++i) out.push_back(i);
  return out;
}

Program TpchProgram(int num, const TpchConsts& consts) {
  const long long scut = consts.supplier_cut;
  const long long ocut = consts.order_cut;
  const long long nk = consts.nation_key;
  std::string text;
  switch (num) {
    case 1:
      text = StrFormat(
          "~PartSupp(s, p) :- PartSupp(s, p), Supplier(s, n, k), "
          "s < %lld.\n"
          "~Lineitem(o, s, p) :- Lineitem(o, s, p), ~PartSupp(s, p2).\n",
          scut);
      break;
    case 2:
      text = StrFormat(
          "~PartSupp(s, p) :- PartSupp(s, p), s < %lld.\n"
          "~Lineitem(o, s, p) :- Lineitem(o, s, p), ~PartSupp(s, p2).\n",
          scut);
      break;
    case 3:
      text = StrFormat(
          "~PartSupp(s, p) :- PartSupp(s, p), Supplier(s, n, k), "
          "Part(p, pn), s < %lld.\n"
          "~Lineitem(o, s, p) :- Lineitem(o, s, p), ~PartSupp(s, p2).\n",
          scut);
      break;
    case 4:
      text = StrFormat(
          "~Lineitem(o, s, p) :- Lineitem(o, s, p), o < %lld.\n"
          "~Supplier(s, n, k) :- Supplier(s, n, k), ~Lineitem(o, s, p).\n"
          "~Customer(c, n, k) :- Customer(c, n, k), Orders(o, c), "
          "~Lineitem(o, s, p).\n",
          ocut);
      break;
    case 5:
      text = StrFormat(
          "~Nation(k, n, r) :- Nation(k, n, r), k = %lld.\n"
          "~Supplier(s, sn, k) :- Supplier(s, sn, k), ~Nation(k, n2, r), "
          "Customer(c, cn, k).\n"
          "~Customer(c, cn, k) :- Customer(c, cn, k), ~Nation(k, n2, r), "
          "Supplier(s, sn, k).\n",
          nk);
      break;
    case 6:
      text = StrFormat(
          "~Orders(o, c) :- Orders(o, c), Customer(c, n, k), o < %lld.\n"
          "~PartSupp(s, p) :- PartSupp(s, p), Supplier(s, n, k), "
          "s < %lld.\n"
          "~Lineitem(o, s, p) :- Lineitem(o, s, p), ~Orders(o, c).\n"
          "~Lineitem(o, s, p) :- Lineitem(o, s, p), ~PartSupp(s, p2).\n",
          ocut, scut);
      break;
    default:
      DR_CHECK_MSG(false, StrFormat("unknown TPC-H program %d", num));
  }
  return MustParse(StrFormat("tpch-%d", num), text);
}

std::vector<int> AllTpchPrograms() { return {1, 2, 3, 4, 5, 6}; }

RunningExample MakeRunningExample() {
  RunningExample ex;
  Database& db = ex.db;
  uint32_t grant = db.AddRelation(MakeSchema("Grant", {"gid", "name"}, "is"));
  uint32_t authgrant =
      db.AddRelation(MakeSchema("AuthGrant", {"aid", "gid"}, "ii"));
  uint32_t author = db.AddRelation(MakeSchema("Author", {"aid", "name"}, "is"));
  uint32_t cite =
      db.AddRelation(MakeSchema("Cite", {"citing", "cited"}, "ii"));
  uint32_t writes = db.AddRelation(MakeSchema("Writes", {"aid", "pid"}, "ii"));
  uint32_t pub = db.AddRelation(MakeSchema("Pub", {"pid", "title"}, "is"));

  ex.g1 = db.Insert(grant, {Value(int64_t{1}), Value("NSF")});
  ex.g2 = db.Insert(grant, {Value(int64_t{2}), Value("ERC")});
  ex.ag1 = db.Insert(authgrant, {Value(int64_t{2}), Value(int64_t{1})});
  ex.ag2 = db.Insert(authgrant, {Value(int64_t{4}), Value(int64_t{2})});
  ex.ag3 = db.Insert(authgrant, {Value(int64_t{5}), Value(int64_t{2})});
  ex.a1 = db.Insert(author, {Value(int64_t{2}), Value("Maggie")});
  ex.a2 = db.Insert(author, {Value(int64_t{4}), Value("Marge")});
  ex.a3 = db.Insert(author, {Value(int64_t{5}), Value("Homer")});
  ex.c = db.Insert(cite, {Value(int64_t{7}), Value(int64_t{6})});
  ex.w1 = db.Insert(writes, {Value(int64_t{4}), Value(int64_t{6})});
  ex.w2 = db.Insert(writes, {Value(int64_t{5}), Value(int64_t{7})});
  ex.p1 = db.Insert(pub, {Value(int64_t{6}), Value("x")});
  ex.p2 = db.Insert(pub, {Value(int64_t{7}), Value("y")});

  ex.program = MustParse(
      "figure-2",
      "~Grant(g, n) :- Grant(g, n), n = 'ERC'.\n"
      "~Author(a, n) :- Author(a, n), AuthGrant(a, g), ~Grant(g, gn).\n"
      "~Pub(p, t) :- Pub(p, t), Writes(a, p), ~Author(a, n).\n"
      "~Writes(a, p) :- Pub(p, t), Writes(a, p), ~Author(a, n).\n"
      "~Cite(c, p) :- Cite(c, p), ~Pub(p, t), Writes(a1, c), "
      "Writes(a2, p).\n");
  return ex;
}

std::vector<DenialConstraint> AuthorDenialConstraints() {
  auto make = [](const char* name, const char* body) {
    StatusOr<DenialConstraint> dc = ParseDenialConstraint(name, body);
    DR_CHECK_MSG(dc.ok(), dc.status().ToString());
    return std::move(dc).value();
  };
  return {
      // Same aid, different oid.
      make("DC1",
           "Author(a, n1, o1, g1), Author(a, n2, o2, g2), o1 != o2"),
      // Same aid, different name.
      make("DC2",
           "Author(a, n1, o1, g1), Author(a, n2, o2, g2), n1 != n2"),
      // Same aid, different organization name.
      make("DC3",
           "Author(a, n1, o1, g1), Author(a, n2, o2, g2), g1 != g2"),
      // Same oid, different organization name.
      make("DC4",
           "Author(a1, n1, o, g1), Author(a2, n2, o, g2), g1 != g2"),
  };
}

}  // namespace deltarepair
