// The paper's experiment programs, normalized to our schemas:
//  * MAS programs 1-20 of Table 1 (parameterized by the generated hubs);
//  * TPC-H programs T1-T6 of Table 2;
//  * the Figure 1 / Figure 2 running example with named tuple handles;
//  * the four denial constraints DC1-DC4 of the HoloClean comparison.
//
// Normalization notes (loose notation in the paper's tables):
//  * attribute order follows our generator schemas;
//  * program 4's head "∆A(aid, pid)" is read as ∆A(aid, n, oid);
//  * programs 16-20 are read as a cascade chain growing one rule per
//    program (Org → Author → Writes → Publication → Cite);
//  * TPC-H bodies like "∆LI(sk, X)" are pinned to Lineitem(ok, sk, pk).
#ifndef DELTAREPAIR_WORKLOAD_PROGRAMS_H_
#define DELTAREPAIR_WORKLOAD_PROGRAMS_H_

#include <vector>

#include "datalog/ast.h"
#include "repair/dc.h"
#include "workload/mas_generator.h"
#include "workload/tpch_generator.h"

namespace deltarepair {

/// MAS program `num` in 1..20 (Table 1), with constants from `hubs`.
Program MasProgram(int num, const MasHubs& hubs);

/// All MAS program numbers.
std::vector<int> AllMasPrograms();

/// TPC-H program `num` in 1..6 (Table 2), with constants from `consts`.
Program TpchProgram(int num, const TpchConsts& consts);

/// All TPC-H program numbers.
std::vector<int> AllTpchPrograms();

/// The running example of Figures 1-2, with the paper's tuple names.
struct RunningExample {
  Database db;
  Program program;
  TupleId g1, g2, ag1, ag2, ag3, a1, a2, a3, c, w1, w2, p1, p2;
};

RunningExample MakeRunningExample();

/// DC1-DC4 over Author(aid, name, oid, organization) (Sec. 6), written in
/// join form (shared variable instead of an explicit equality).
std::vector<DenialConstraint> AuthorDenialConstraints();

}  // namespace deltarepair

#endif  // DELTAREPAIR_WORKLOAD_PROGRAMS_H_
