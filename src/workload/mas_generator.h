// Synthetic academic database in the shape of the paper's MAS fragment
// [35]: Organization, Author, Writes, Publication, Cite — with foreign-key
// structure and skewed fan-outs, deterministic under a seed. The paper's
// snapshot is proprietary; absolute sizes differ, the cascade/constraint
// structure the programs exercise does not (see DESIGN.md substitutions).
#ifndef DELTAREPAIR_WORKLOAD_MAS_GENERATOR_H_
#define DELTAREPAIR_WORKLOAD_MAS_GENERATOR_H_

#include <string>

#include "relation/database.h"

namespace deltarepair {

struct MasConfig {
  uint64_t seed = 42;
  size_t num_orgs = 60;
  size_t num_authors = 900;
  size_t num_pubs = 1800;
  /// Distinct author-name pool; names repeat so name-selection rules
  /// (programs 1, 5, 6, 9) match several authors.
  size_t name_pool = 150;
  int max_writes_per_pub = 3;
  int max_cites_per_pub = 4;
  double org_skew = 0.8;   // authors cluster into few big organizations
  double cite_skew = 0.8;  // citations cluster onto few hub papers

  /// Multiplies all table sizes (DR_SCALE in the benches).
  MasConfig Scaled(double factor) const;
};

/// Constants the paper's programs plug into selections — chosen from the
/// generated data so every program has non-trivial work to do.
struct MasHubs {
  int64_t hub_author_aid = 0;     // author with the most papers
  std::string common_name;        // most frequent author name
  int64_t hub_org_oid = 0;        // organization with the most authors
  int64_t hub_pub_pid = 0;        // most-cited publication
  int64_t mid_pid = 0;            // median pid (for pid < C selections)
};

struct MasData {
  Database db;
  MasHubs hubs;
};

/// Relation names used by the generator and the program library.
inline constexpr const char* kMasOrganization = "Organization";
inline constexpr const char* kMasAuthor = "Author";
inline constexpr const char* kMasWrites = "Writes";
inline constexpr const char* kMasPublication = "Publication";
inline constexpr const char* kMasCite = "Cite";

MasData GenerateMas(const MasConfig& config);

}  // namespace deltarepair

#endif  // DELTAREPAIR_WORKLOAD_MAS_GENERATOR_H_
