// Cell-error injection for the HoloClean comparison (Tables 4 & 5,
// Figure 10). Builds a clean Author(aid, name, oid, organization) table —
// aid unique, oid → organization functional — then corrupts one cell in
// each of `num_errors` distinct rows, tracking ground truth.
#ifndef DELTAREPAIR_WORKLOAD_ERROR_INJECTOR_H_
#define DELTAREPAIR_WORKLOAD_ERROR_INJECTOR_H_

#include <vector>

#include "relation/database.h"

namespace deltarepair {

struct ErrorInjectorConfig {
  uint64_t seed = 1234;
  size_t num_rows = 5000;
  size_t num_errors = 100;
  /// Organizations (oid groups). 0 = auto (num_rows / 5), keeping DC4
  /// violation sets small, matching the per-error violation counts of the
  /// paper's Table 5.
  size_t num_orgs = 0;
  size_t name_pool = 800;
};

struct InjectedCell {
  size_t row = 0;
  size_t column = 0;
  Value clean_value;
};

struct InjectedTable {
  RelationSchema schema;          // Author(aid, name, oid, organization)
  std::vector<Tuple> rows;        // corrupted table
  std::vector<Tuple> clean_rows;  // ground truth
  std::vector<InjectedCell> errors;

  /// A fresh database holding the corrupted table.
  Database MakeDb() const;
};

/// Column indices of the injected Author table.
inline constexpr size_t kAuthorAid = 0;
inline constexpr size_t kAuthorName = 1;
inline constexpr size_t kAuthorOid = 2;
inline constexpr size_t kAuthorOrgName = 3;

InjectedTable MakeInjectedAuthorTable(const ErrorInjectorConfig& config);

}  // namespace deltarepair

#endif  // DELTAREPAIR_WORKLOAD_ERROR_INJECTOR_H_
