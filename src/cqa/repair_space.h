// Per-semantics repair spaces for consistent query answering.
//
// Each delta-rule semantics of the paper picks out a *space* of
// stabilizing deletion sets — the sets it could output once its
// tie-breaking nondeterminism is made explicit:
//
//  * end / stage (Defs. 3.10 / 3.7): deterministic — a singleton;
//  * step (Def. 3.5): every minimum-size outcome of a maximal
//    activation sequence (the definition's argmin, not Algorithm 2's
//    greedy pick);
//  * independent (Def. 3.3): every minimum-size stabilizing set.
//
// A RepairSpace answers, for one query answer's why-provenance DNF,
// whether the answer survives every repair (certain) or some repair
// (possible), and can produce a minimal counterexample deletion set.
// Two representations exist:
//
//  * EnumeratedRepairSpace — an explicit list of repairs (end/stage
//    singletons; step via memoized DFS over activation sequences);
//  * SymbolicRepairSpace — the independent space as a CNF: the negated
//    provenance formula of Algorithm 1 (models = stabilizing sets,
//    via DeletionCnfBuilder) conjoined with a totalizer cardinality cap
//    at the Min-Ones optimum. Certain/possible verdicts are incremental
//    CdclSolver::Solve(assumptions) calls — per answer, a retired
//    selector variable activates the clauses of ¬φ (certain: UNSAT ⇔
//    the answer survives every minimum repair) or of a Tseitin-encoded
//    φ (possible: SAT ⇔ some minimum repair keeps it); counterexamples
//    re-run the Min-Ones machinery over stability ∧ ¬φ.
//
// Spaces whose construction was truncated by a budget or cancellation
// are *inexact*: every verdict degrades to undecided with the
// conservative bounds (certain=false, possible=true).
//
// CqaRegistry maps semantics registry names (aliases resolve through
// SemanticsRegistry) to space builders, mirroring the pluggable
// semantics dispatch: a future fifth semantics registers a builder
// without touching the evaluator or the CLI.
#ifndef DELTAREPAIR_CQA_REPAIR_SPACE_H_
#define DELTAREPAIR_CQA_REPAIR_SPACE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cqa/query.h"
#include "provenance/bool_formula.h"
#include "provenance/cone.h"
#include "repair/repair_options.h"
#include "sat/min_ones.h"
#include "sat/solver.h"

namespace deltarepair {

/// Truth value of one certain/possible check. When `decided` is false
/// the space could not prove either way (inexact space, or a budget /
/// cancellation tripped mid-solve) and `holds` carries the conservative
/// bound: false for certain, true for possible.
struct CqaVerdict {
  bool holds = false;
  bool decided = false;
};

/// A minimal deletion set refuting one answer (annotated mode).
struct CqaCounterexample {
  std::vector<TupleId> deleted;  // sorted
  /// True when `deleted` is provably a minimum-cardinality killing
  /// member of the repair space. For the symbolic independent space
  /// this coincides with the smallest stabilizing set that kills the
  /// answer (Min-Ones proved its bound); false there means an anytime
  /// incumbent whose minimality was not proven.
  bool minimal = false;
};

/// Per-worker entailment handle of one RepairSpace. Parallel per-answer
/// evaluation gives each worker thread its own judge (thread-confined
/// scratch state; judges of one space are safe to use concurrently with
/// each other). Judges flush their work counters into the space on
/// destruction — destroy every judge before reading the space's stats.
class AnswerJudge {
 public:
  virtual ~AnswerJudge() = default;
  virtual CqaVerdict Certain(const AnswerProvenance& prov,
                             ExecContext* ctx) = 0;
  virtual CqaVerdict Possible(const AnswerProvenance& prov,
                              ExecContext* ctx) = 0;
  virtual std::optional<CqaCounterexample> Counterexample(
      const AnswerProvenance& prov, ExecContext* ctx) = 0;
};

class RepairSpace {
 public:
  virtual ~RepairSpace() = default;

  /// True when the space is exactly the semantics' repair set; false
  /// when construction was budget-truncated or cancelled.
  bool exact() const { return exact_; }
  /// Cardinality of every repair in the space (uniform by definition).
  /// Meaningful only when exact().
  uint32_t repair_size() const { return repair_size_; }
  /// Number of explicitly enumerated repairs (0 for symbolic spaces).
  virtual uint64_t NumEnumerated() const { return 0; }

  /// Does the answer survive every repair of the space?
  virtual CqaVerdict Certain(const AnswerProvenance& prov,
                             ExecContext* ctx) = 0;
  /// Does the answer survive at least one repair of the space?
  virtual CqaVerdict Possible(const AnswerProvenance& prov,
                              ExecContext* ctx) = 0;
  /// A smallest repair of the space under which no monomial of `prov`
  /// survives, or nullopt when none exists / none was found in budget.
  /// The symbolic space answers via Min-Ones over stability ∧ ¬φ, whose
  /// optimum is also the smallest stabilizing killer overall.
  virtual std::optional<CqaCounterexample> Counterexample(
      const AnswerProvenance& prov, ExecContext* ctx) = 0;

  /// Called once by the evaluator with the grounded answer count before
  /// any judge is created or any verdict is asked. Lets a space size its
  /// shared machinery to the request — e.g. the warm space only builds
  /// its cone decomposition when enough answers will amortize it.
  virtual void PrepareJudges(size_t num_answers) { (void)num_answers; }

  /// Per-worker judge for parallel evaluation, or nullptr when the
  /// space only supports direct (sequential) calls on its own methods.
  virtual std::unique_ptr<AnswerJudge> NewJudge() { return nullptr; }

  /// Folds construction + entailment work counters into `stats`
  /// (satisfies the CLI contract that sat_solve_calls etc. cover CQA
  /// entailment calls, not just Min-Ones).
  virtual void AddStats(RepairStats* stats) const { stats->Add(stats_); }
  /// Folds the slicing layer's counters into `stats` (no-op for spaces
  /// without one).
  virtual void AddSliceStats(SliceStats* stats) const { (void)stats; }

 protected:
  bool exact_ = true;
  uint32_t repair_size_ = 0;
  RepairStats stats_;
};

/// Explicit repairs (end/stage singletons, step argmin outcomes).
/// Repair spaces are never empty (every semantics outputs at least one
/// repair); an empty `repairs` list is treated as truncated
/// construction and forces the space inexact regardless of `exact`.
class EnumeratedRepairSpace : public RepairSpace {
 public:
  EnumeratedRepairSpace(std::vector<std::vector<TupleId>> repairs,
                        bool exact, RepairStats stats);

  uint64_t NumEnumerated() const override { return repairs_.size(); }
  CqaVerdict Certain(const AnswerProvenance& prov,
                     ExecContext* ctx) override;
  CqaVerdict Possible(const AnswerProvenance& prov,
                      ExecContext* ctx) override;
  std::optional<CqaCounterexample> Counterexample(
      const AnswerProvenance& prov, ExecContext* ctx) override;

  const std::vector<std::vector<TupleId>>& repairs() const {
    return repairs_;
  }

 private:
  /// True when some monomial of `prov` is disjoint from repair `i`.
  bool Survives(const AnswerProvenance& prov, size_t i) const;

  std::vector<std::vector<TupleId>> repairs_;        // each sorted
  std::vector<std::unordered_set<uint64_t>> packed_;  // per repair
};

/// The independent space, symbolically: the stability CNF reduced to a
/// minimum-repair cone decomposition (provenance/cone.h). Per-answer
/// verdicts run through SlicedJudge on the answer's memoized cone slice
/// (fresh throwaway solvers — thread-safe and deterministic); the
/// pre-slicing full-CNF machinery (one shared incremental CDCL solver
/// with per-component totalizer caps, loaded lazily on first use) stays
/// as the soundness fallback and the differential-test oracle.
class SymbolicRepairSpace : public RepairSpace {
 public:
  /// Builds the space over the view's current state. Reads ctx for
  /// budget/cancel; on truncation the space is inexact.
  SymbolicRepairSpace(InstanceView* view, const Program& program,
                      const RepairOptions& options, ExecContext* ctx);

  /// Direct calls delegate to a temporary judge.
  CqaVerdict Certain(const AnswerProvenance& prov,
                     ExecContext* ctx) override;
  CqaVerdict Possible(const AnswerProvenance& prov,
                      ExecContext* ctx) override;
  std::optional<CqaCounterexample> Counterexample(
      const AnswerProvenance& prov, ExecContext* ctx) override;

  std::unique_ptr<AnswerJudge> NewJudge() override;

  void AddStats(RepairStats* stats) const override;
  void AddSliceStats(SliceStats* stats) const override;

 private:
  friend class SymbolicJudge;

  /// Loads the shared fallback solver with the full stability CNF plus
  /// per-component totalizer caps. Requires fallback_mu_.
  void EnsureFallbackLoadedLocked();
  /// Full-CNF verdicts on the shared solver (selector-retired clause
  /// groups); serialize internally on fallback_mu_.
  CqaVerdict FallbackCertain(const AnswerProvenance& prov, ExecContext* ctx);
  CqaVerdict FallbackPossible(const AnswerProvenance& prov,
                              ExecContext* ctx);
  /// Full-CNF counterexample: Min-Ones over a private copy of
  /// stability ∧ ¬φ (no shared solver — runs concurrently).
  std::optional<CqaCounterexample> FallbackCounterexample(
      const AnswerProvenance& prov, ExecContext* ctx);

  /// Monomial death clause: the positive deletion literals of the
  /// monomial's touched tuples. Returns false when the monomial has no
  /// touched tuple (it survives every repair).
  bool DeathClause(const std::vector<TupleId>& monomial,
                   std::vector<Lit>* out);
  /// Runs one assumption solve under the remaining ctx budget.
  SolveStatus SolveUnder(ExecContext* ctx, const std::vector<Lit>& assumptions);

  DeletionCnfBuilder builder_;
  MinOnesOptions min_ones_options_;
  SliceOptions slice_options_;
  /// The proven-minimum model of the stability CNF (phase 2).
  std::vector<bool> min_model_;
  std::unique_ptr<ConeSlicer> slicer_;

  std::mutex fallback_mu_;  // serializes solver_ use and lazy loading
  bool fallback_loaded_ = false;
  CdclSolver solver_;

  std::mutex stats_mu_;  // judges flush counters concurrently
  SliceStats slice_stats_;
};

/// Builds the repair space of one semantics over the view's current
/// state. The builder may scratch-mutate the view; the caller owns
/// snapshot/restore (CQA evaluation restores after building).
using RepairSpaceBuilder =
    std::function<std::unique_ptr<RepairSpace>(
        InstanceView* view, const Program& program,
        const RepairOptions& options, ExecContext* ctx)>;

/// Semantics name -> repair-space builder. Built-ins for the paper's
/// four semantics are registered on first use; additional semantics
/// register alongside their Semantics entry (thread-safe).
class CqaRegistry {
 public:
  static CqaRegistry& Global();

  /// `semantics_name` must be a primary SemanticsRegistry name.
  Status Register(std::string semantics_name, RepairSpaceBuilder builder);

  /// Lookup by semantics name or alias (aliases resolve through
  /// SemanticsRegistry); kNotFound when the semantics exists but has no
  /// CQA space provider, or does not exist at all.
  StatusOr<const RepairSpaceBuilder*> Get(const std::string& name) const;

 private:
  CqaRegistry();

  mutable std::mutex mu_;
  std::unordered_map<std::string, RepairSpaceBuilder> by_name_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_CQA_REPAIR_SPACE_H_
