#include "cqa/repair_space.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>
#include <unordered_map>

#include "common/timer.h"
#include "cqa/entailment.h"
#include "datalog/grounder.h"
#include "relation/instance_view.h"
#include "repair/semantics_registry.h"
#include "sat/totalizer.h"

namespace deltarepair {

// ---------------------------------------------------------------------------
// EnumeratedRepairSpace
// ---------------------------------------------------------------------------

EnumeratedRepairSpace::EnumeratedRepairSpace(
    std::vector<std::vector<TupleId>> repairs, bool exact,
    RepairStats stats) {
  repairs_ = std::move(repairs);
  // A repair space is never empty (every semantics outputs at least one
  // repair — D itself always stabilizes), so an empty list can only
  // mean truncated construction; claiming exactness over zero repairs
  // would make every answer vacuously certain.
  exact_ = exact && !repairs_.empty();
  stats_ = std::move(stats);
  packed_.reserve(repairs_.size());
  for (std::vector<TupleId>& r : repairs_) {
    std::sort(r.begin(), r.end());
    r.erase(std::unique(r.begin(), r.end()), r.end());
    std::unordered_set<uint64_t> packed;
    packed.reserve(r.size() * 2);
    for (const TupleId& t : r) packed.insert(t.Pack());
    packed_.push_back(std::move(packed));
  }
  if (!repairs_.empty()) {
    repair_size_ = static_cast<uint32_t>(repairs_.front().size());
    for (const auto& r : repairs_) {
      repair_size_ =
          std::min(repair_size_, static_cast<uint32_t>(r.size()));
    }
  }
}

bool EnumeratedRepairSpace::Survives(const AnswerProvenance& prov,
                                     size_t i) const {
  const std::unordered_set<uint64_t>& repair = packed_[i];
  for (const std::vector<TupleId>& m : prov.monomials) {
    bool alive = true;
    for (const TupleId& t : m) {
      if (repair.count(t.Pack()) != 0) {
        alive = false;
        break;
      }
    }
    if (alive) return true;
  }
  return false;
}

CqaVerdict EnumeratedRepairSpace::Certain(const AnswerProvenance& prov,
                                          ExecContext* ctx) {
  if (!exact_) return {false, false};
  for (size_t i = 0; i < repairs_.size(); ++i) {
    if (ctx->Tick()) return {false, false};
    if (!Survives(prov, i)) return {false, true};
  }
  return {true, true};
}

CqaVerdict EnumeratedRepairSpace::Possible(const AnswerProvenance& prov,
                                           ExecContext* ctx) {
  if (!exact_) return {true, false};
  for (size_t i = 0; i < repairs_.size(); ++i) {
    if (ctx->Tick()) return {true, false};
    if (Survives(prov, i)) return {true, true};
  }
  return {false, true};
}

std::optional<CqaCounterexample> EnumeratedRepairSpace::Counterexample(
    const AnswerProvenance& prov, ExecContext* ctx) {
  if (!exact_) return std::nullopt;
  // The smallest killing repair (sizes are uniform for step argmin
  // spaces, but nothing in the representation guarantees it).
  size_t best = repairs_.size();
  for (size_t i = 0; i < repairs_.size(); ++i) {
    if (ctx->ShouldStop()) return std::nullopt;
    if (Survives(prov, i)) continue;
    if (best == repairs_.size() ||
        repairs_[i].size() < repairs_[best].size()) {
      best = i;
    }
  }
  if (best == repairs_.size()) return std::nullopt;
  CqaCounterexample cex;
  cex.deleted = repairs_[best];
  cex.minimal = true;  // provably the smallest killing member
  return cex;
}

// ---------------------------------------------------------------------------
// SymbolicRepairSpace (independent semantics)
// ---------------------------------------------------------------------------

SymbolicRepairSpace::SymbolicRepairSpace(InstanceView* view,
                                         const Program& program,
                                         const RepairOptions& options,
                                         ExecContext* ctx) {
  min_ones_options_ = options.independent.min_ones;
  slice_options_ = options.cqa_slice;

  // Phase 1 (Eval): hypothetical grounding, exactly Algorithm 1's CNF —
  // the models of builder_.cnf() are the stabilizing sets.
  {
    ScopedTimer t(&stats_.eval_seconds);
    Grounder grounder(view);
    for (size_t i = 0; i < program.rules().size() && !ctx->stopped(); ++i) {
      grounder.EnumerateRule(program.rules()[i], static_cast<int>(i),
                             BaseMatch::kLive, DeltaMatch::kHypothetical,
                             [&](const GroundAssignment& ga) {
                               if (ctx->Tick()) return false;
                               builder_.AddAssignment(ga);
                               return true;
                             });
    }
    stats_.assignments = grounder.assignments_enumerated();
  }
  if (ctx->stopped()) {
    exact_ = false;
    return;
  }
  {
    ScopedTimer t(&stats_.process_prov_seconds);
    builder_.Normalize();
  }
  stats_.cnf_vars = builder_.num_vars();
  stats_.cnf_clauses = builder_.cnf().num_clauses();
  stats_.cnf_dup_clauses = builder_.normalize_stats().duplicate_clauses;
  stats_.cnf_subsumed_clauses =
      builder_.normalize_stats().unit_subsumed_clauses;

  // Phase 2 (Solve): Min-Ones pins the space's cardinality k. Without a
  // proven optimum the space cannot be characterized — stay inexact.
  MinOnesResult solved;
  {
    ScopedTimer t(&stats_.solve_seconds);
    MinOnesOptions solver_options = min_ones_options_;
    solver_options.time_limit_seconds = std::min(
        solver_options.time_limit_seconds, ctx->RemainingSeconds());
    if (ctx->cancel_token() != nullptr) {
      solver_options.cancel = ctx->cancel_token()->flag();
    }
    solved = MinOnesSat(builder_.cnf(), solver_options);
  }
  stats_.AddSolver(solved.solver);
  if (!solved.satisfiable || !solved.optimal || ctx->ShouldStop()) {
    exact_ = false;
    stats_.optimal = false;
    return;
  }
  repair_size_ = solved.num_true;
  min_model_ = std::move(solved.model);

  // Phase 3 (Cone): decompose the minimum-repair space around the
  // proven optimum. Per-answer entailment then runs on memoized cone
  // slices; the full-CNF fallback solver is loaded lazily on first
  // need (often never — constant propagation decides most answers).
  {
    std::vector<uint64_t> content_ids(builder_.num_vars());
    for (uint32_t v = 0; v < builder_.num_vars(); ++v) {
      content_ids[v] = builder_.TupleOfVar(v).Pack();
    }
    slicer_ = std::make_unique<ConeSlicer>(builder_.cnf(), min_model_,
                                           /*optimal=*/true,
                                           std::move(content_ids));
  }
}

void SymbolicRepairSpace::EnsureFallbackLoadedLocked() {
  if (fallback_loaded_) return;
  fallback_loaded_ = true;
  // The pre-slicing entailment backend: the stability CNF plus a
  // permanent cardinality cap at k on one incremental solver — its
  // models under no assumptions are exactly the minimum repairs.
  SolverOptions entail_options;
  entail_options.learning = min_ones_options_.enable_learning;
  entail_options.restarts = min_ones_options_.enable_restarts;
  // No inprocessing here: the stability CNF is already normalized and
  // the totalizer is arc-consistent, so a sweep removes nothing, and
  // its detach/canonicalize/reattach cycle both costs more than the
  // entailment solves it would amortize over and measurably degrades
  // their propagation order.
  entail_options.inprocessing = false;
  *solver_.mutable_options() = entail_options;
  solver_.AddCnf(builder_.cnf());
  const uint32_t n = builder_.num_vars();
  solver_.FreezeRange(0, n);

  // The cardinality cap is laid down per connected component of the
  // stability CNF, not as one global counter. Components share no
  // variables, so the minimum repair size decomposes as k = sum k_i
  // over per-component minima, and a deletion set is a minimum repair
  // iff every component slice is a minimum component repair: capping
  // each component at its own k_i (read off the optimal model — any
  // slice of a global optimum is a component optimum) admits exactly
  // the models of the single cap at k. The counters total
  // sum n_i * k_i clauses instead of n * k — orders of magnitude
  // smaller when violations are spread over many small components.
  std::vector<uint32_t> parent(n);
  for (uint32_t v = 0; v < n; ++v) parent[v] = v;
  std::function<uint32_t(uint32_t)> find = [&](uint32_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const std::vector<Lit>& clause : builder_.cnf().clauses()) {
    for (size_t i = 1; i < clause.size(); ++i) {
      parent[find(LitVar(clause[i]))] = find(LitVar(clause[0]));
    }
  }
  std::unordered_map<uint32_t, std::vector<uint32_t>> components;
  for (uint32_t v = 0; v < n; ++v) components[find(v)].push_back(v);
  for (auto& [root, vars] : components) {
    uint32_t k = 0;
    for (uint32_t v : vars) k += min_model_[v] ? 1 : 0;
    if (k == 0) {
      // Only clause-free variables sit in a zero-cost component; they
      // can never be part of a minimum repair.
      for (uint32_t v : vars) solver_.AddClause({NegLit(v)});
      continue;
    }
    if (k >= vars.size()) continue;  // cap would be vacuous
    std::vector<Lit> inputs;
    inputs.reserve(vars.size());
    for (uint32_t v : vars) inputs.push_back(PosLit(v));
    std::vector<Lit> outputs = BuildTotalizer(&solver_, inputs, k + 1);
    if (outputs.size() > k) solver_.AddClause({-outputs[k]});
  }
  solver_.FreezeRange(n, solver_.num_vars());
}

bool SymbolicRepairSpace::DeathClause(const std::vector<TupleId>& monomial,
                                      std::vector<Lit>* out) {
  bool touched = false;
  for (const TupleId& t : monomial) {
    int64_t v = builder_.FindVar(t);
    if (v >= 0) {
      out->push_back(PosLit(static_cast<uint32_t>(v)));
      touched = true;
    }
  }
  return touched;
}

SolveStatus SymbolicRepairSpace::SolveUnder(
    ExecContext* ctx, const std::vector<Lit>& assumptions) {
  SolverOptions* opts = solver_.mutable_options();
  double remaining = ctx->RemainingSeconds();
  opts->time_limit_seconds =
      std::isinf(remaining) ? 0 : std::max(remaining, 1e-9);
  opts->cancel =
      ctx->cancel_token() != nullptr ? ctx->cancel_token()->flag() : nullptr;
  return solver_.Solve(assumptions);
}

CqaVerdict SymbolicRepairSpace::FallbackCertain(const AnswerProvenance& prov,
                                                ExecContext* ctx) {
  std::lock_guard<std::mutex> lock(fallback_mu_);
  EnsureFallbackLoadedLocked();
  if (ctx->ShouldStop()) return {false, false};
  // ¬φ: every monomial loses a tuple. A monomial no minimum repair can
  // touch makes the answer certain outright (untouched tuples are never
  // part of a minimum stabilizing set).
  std::vector<std::vector<Lit>> clauses;
  clauses.reserve(prov.monomials.size());
  for (const std::vector<TupleId>& m : prov.monomials) {
    std::vector<Lit> clause;
    if (!DeathClause(m, &clause)) return {true, true};
    clauses.push_back(std::move(clause));
  }
  const Lit selector = PosLit(solver_.NewVar());
  for (std::vector<Lit>& clause : clauses) {
    clause.push_back(-selector);
    solver_.AddClause(std::move(clause));
  }
  SolveStatus status = SolveUnder(ctx, {selector});
  solver_.AddClause({-selector});  // retire
  if (status == SolveStatus::kUnknown) {
    ctx->ShouldStop();  // latch the budget/cancel reason
    return {false, false};
  }
  // UNSAT under ¬φ over the minimum repairs: the answer survives all.
  return {status == SolveStatus::kUnsat, true};
}

CqaVerdict SymbolicRepairSpace::FallbackPossible(const AnswerProvenance& prov,
                                                 ExecContext* ctx) {
  std::lock_guard<std::mutex> lock(fallback_mu_);
  EnsureFallbackLoadedLocked();
  if (ctx->ShouldStop()) return {true, false};
  // φ: some monomial fully survives — Tseitin monomial variables under
  // a retired selector.
  for (const std::vector<TupleId>& m : prov.monomials) {
    std::vector<Lit> death;
    if (!DeathClause(m, &death)) return {true, true};
  }
  const Lit selector = PosLit(solver_.NewVar());
  std::vector<Lit> some_monomial{-selector};
  for (const std::vector<TupleId>& m : prov.monomials) {
    const Lit mono = PosLit(solver_.NewVar());
    some_monomial.push_back(mono);
    for (const TupleId& t : m) {
      int64_t v = builder_.FindVar(t);
      if (v >= 0) {
        solver_.AddClause({-mono, NegLit(static_cast<uint32_t>(v))});
      }
    }
  }
  solver_.AddClause(std::move(some_monomial));
  SolveStatus status = SolveUnder(ctx, {selector});
  solver_.AddClause({-selector});  // retire
  if (status == SolveStatus::kUnknown) {
    ctx->ShouldStop();
    return {true, false};
  }
  return {status == SolveStatus::kSat, true};
}

std::optional<CqaCounterexample> SymbolicRepairSpace::FallbackCounterexample(
    const AnswerProvenance& prov, ExecContext* ctx) {
  // Min-Ones over stability ∧ ¬φ: the smallest stabilizing set killing
  // the answer. When the answer is non-certain that minimum equals the
  // space's cardinality, so the witness is itself a minimum repair.
  Cnf cnf = builder_.cnf();
  for (const std::vector<TupleId>& m : prov.monomials) {
    std::vector<Lit> clause;
    if (!DeathClause(m, &clause)) return std::nullopt;  // unkillable
    for (Lit l : clause) cnf.Touch(LitVar(l));
    cnf.AddClause(std::move(clause));
  }
  MinOnesOptions options = min_ones_options_;
  options.time_limit_seconds =
      std::min(options.time_limit_seconds, ctx->RemainingSeconds());
  if (ctx->cancel_token() != nullptr) {
    options.cancel = ctx->cancel_token()->flag();
  }
  MinOnesResult solved = MinOnesSat(cnf, options);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.AddSolver(solved.solver);
  }
  if (!solved.satisfiable) {
    ctx->ShouldStop();
    return std::nullopt;  // proven certain, or budget before any model
  }
  CqaCounterexample cex;
  for (uint32_t v = 0; v < builder_.num_vars(); ++v) {
    if (solved.model[v]) cex.deleted.push_back(builder_.TupleOfVar(v));
  }
  std::sort(cex.deleted.begin(), cex.deleted.end());
  cex.minimal = solved.optimal;
  return cex;
}

// The per-worker judge: sliced entailment first, full-CNF fallback when
// a soundness gate declines. One judge per worker thread; the SlicedJudge
// inside uses fresh throwaway solvers, so concurrent judges only meet at
// the memoized slice table, the shared fallback solver's mutex, and the
// stats flush.
class SymbolicJudge : public AnswerJudge {
 public:
  explicit SymbolicJudge(SymbolicRepairSpace* space)
      : space_(space),
        sliced_(space->slicer_.get(), space->slice_options_,
                space->min_ones_options_) {}

  ~SymbolicJudge() override {
    std::lock_guard<std::mutex> lock(space_->stats_mu_);
    space_->slice_stats_.Add(sliced_.slice_stats());
    space_->stats_.Add(sliced_.repair_stats());
  }

  CqaVerdict Certain(const AnswerProvenance& prov,
                     ExecContext* ctx) override {
    if (!space_->exact()) return {false, false};
    if (sliced_.enabled()) {
      std::optional<CqaVerdict> v = sliced_.Certain(Reduce(prov), ctx);
      if (v.has_value()) return *v;
    }
    return space_->FallbackCertain(prov, ctx);
  }

  CqaVerdict Possible(const AnswerProvenance& prov,
                      ExecContext* ctx) override {
    if (!space_->exact()) return {true, false};
    if (sliced_.enabled()) {
      std::optional<CqaVerdict> v = sliced_.Possible(Reduce(prov), ctx);
      if (v.has_value()) return *v;
    }
    return space_->FallbackPossible(prov, ctx);
  }

  std::optional<CqaCounterexample> Counterexample(
      const AnswerProvenance& prov, ExecContext* ctx) override {
    if (!space_->exact()) return std::nullopt;
    if (sliced_.enabled()) {
      SlicedJudge::CexOutcome out = sliced_.Counterexample(Reduce(prov), ctx);
      if (out.kind == SlicedJudge::CexOutcome::Kind::kNone) {
        return std::nullopt;
      }
      if (out.kind == SlicedJudge::CexOutcome::Kind::kFound) {
        CqaCounterexample cex;
        cex.deleted.reserve(out.deleted_vars.size());
        for (uint32_t v : out.deleted_vars) {
          cex.deleted.push_back(space_->builder_.TupleOfVar(v));
        }
        std::sort(cex.deleted.begin(), cex.deleted.end());
        cex.minimal = out.minimal;
        return cex;
      }
    }
    return space_->FallbackCounterexample(prov, ctx);
  }

 private:
  ConeSlicer::ReducedAnswer Reduce(const AnswerProvenance& prov) const {
    return space_->slicer_->Reduce(
        prov.monomials,
        [this](TupleId t) { return space_->builder_.FindVar(t); });
  }

  SymbolicRepairSpace* space_;
  SlicedJudge sliced_;
};

CqaVerdict SymbolicRepairSpace::Certain(const AnswerProvenance& prov,
                                        ExecContext* ctx) {
  SymbolicJudge judge(this);
  return judge.Certain(prov, ctx);
}

CqaVerdict SymbolicRepairSpace::Possible(const AnswerProvenance& prov,
                                         ExecContext* ctx) {
  SymbolicJudge judge(this);
  return judge.Possible(prov, ctx);
}

std::optional<CqaCounterexample> SymbolicRepairSpace::Counterexample(
    const AnswerProvenance& prov, ExecContext* ctx) {
  SymbolicJudge judge(this);
  return judge.Counterexample(prov, ctx);
}

std::unique_ptr<AnswerJudge> SymbolicRepairSpace::NewJudge() {
  return std::make_unique<SymbolicJudge>(this);
}

void SymbolicRepairSpace::AddStats(RepairStats* stats) const {
  RepairStats total = stats_;
  total.AddSolver(solver_.stats());
  stats->Add(total);
}

void SymbolicRepairSpace::AddSliceStats(SliceStats* stats) const {
  stats->Add(slice_stats_);
  if (slicer_ != nullptr) stats->Add(slicer_->stats());
}

// ---------------------------------------------------------------------------
// Step space: every minimum-size maximal-activation-sequence outcome
// (Def. 3.5's argmin), via memoized DFS with a best-size bound.
// ---------------------------------------------------------------------------

namespace {

class StepSpaceSearch {
 public:
  StepSpaceSearch(InstanceView* view, const Program& program,
                  uint64_t max_states, ExecContext* ctx)
      : view_(view),
        program_(program),
        states_left_(max_states),
        ctx_(ctx),
        grounder_(view) {}

  /// Returns false when the state budget or the ExecContext tripped.
  bool Run() {
    Dfs();
    return !out_of_budget_ && !ctx_->stopped();
  }

  /// Distinct minimum-size outcomes, sorted (deterministic).
  std::vector<std::vector<TupleId>> MinOutcomes() const {
    std::vector<std::vector<TupleId>> out;
    for (const std::vector<uint64_t>& packed : outcomes_) {
      if (packed.size() != best_size_) continue;
      std::vector<TupleId> repair;
      repair.reserve(packed.size());
      for (uint64_t p : packed) repair.push_back(TupleId::Unpack(p));
      out.push_back(std::move(repair));
    }
    return out;
  }

  uint64_t states_visited() const { return states_visited_; }
  uint64_t assignments() const {
    return grounder_.assignments_enumerated();
  }

 private:
  /// 128-bit order-insensitive key of the deleted set. Two independent
  /// 64-bit mixes: with up to kStepSpaceMaxStates states a single
  /// 64-bit key has a ~1e-7 birthday-collision chance, which would
  /// silently drop a subtree from a space still reported exact; at 128
  /// bits the risk is negligible.
  std::pair<uint64_t, uint64_t> StateKey() const {
    uint64_t sum1 = 0, xor1 = 0, sum2 = 0, xor2 = 0;
    for (uint64_t p : deleted_) {
      uint64_t m1 = Mix64(p);
      uint64_t m2 = Mix64(p ^ 0x94d049bb133111ebULL);
      sum1 += m1;
      xor1 ^= m1;
      sum2 += m2;
      xor2 ^= m2;
    }
    return {HashCombine(HashCombine(0x9e3779b97f4a7c15ULL, sum1), xor1),
            HashCombine(HashCombine(0xbf58476d1ce4e5b9ULL, sum2), xor2)};
  }

  void Dfs() {
    // Unthrottled check: states are coarse units (each grounds every
    // rule), and a pre-set cancel token must stop the very first one.
    // The assignment and depth caps bound the search on instances where
    // the request set no budget: per-state grounding cost scales with
    // the instance, and the first depth-first path recurses as deep as
    // the whole cascade (each frame holds a heads list) — without them
    // a mid-size database turns the builder into an unbounded
    // time/memory sink instead of an inexact space.
    if (out_of_budget_ || ctx_->ShouldStop() ||
        grounder_.assignments_enumerated() > kMaxAssignments ||
        deleted_.size() > kMaxDepth) {
      out_of_budget_ = true;
      return;
    }
    if (states_left_-- == 0) {
      out_of_budget_ = true;
      return;
    }
    ++states_visited_;
    // A deeper sequence can never undercut the incumbent minimum.
    if (deleted_.size() > best_size_) return;
    if (!visited_.insert(StateKey()).second) return;

    // All delta tuples derivable by one activation from this state.
    std::vector<uint64_t> heads;
    for (size_t i = 0; i < program_.rules().size(); ++i) {
      grounder_.EnumerateRule(program_.rules()[i], static_cast<int>(i),
                              BaseMatch::kLive, DeltaMatch::kCurrent,
                              [&](const GroundAssignment& ga) {
                                heads.push_back(ga.head.Pack());
                                return true;
                              });
    }
    std::sort(heads.begin(), heads.end());
    heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
    if (heads.empty()) {
      // Fixpoint — a maximal activation sequence ends here.
      std::vector<uint64_t> outcome(deleted_.begin(), deleted_.end());
      best_size_ = std::min<size_t>(best_size_, outcome.size());
      outcomes_.insert(std::move(outcome));
      return;
    }
    if (deleted_.size() >= best_size_) return;  // children only grow
    for (uint64_t packed : heads) {
      TupleId t = TupleId::Unpack(packed);
      view_->MarkDeleted(t);
      deleted_.insert(packed);
      Dfs();
      deleted_.erase(packed);
      view_->UnmarkDeleted(t);
      if (out_of_budget_) return;
    }
  }

  /// Grounding-work cap across the whole search (each state re-grounds
  /// every rule, so the state cap alone does not bound time).
  static constexpr uint64_t kMaxAssignments = 50'000'000;
  /// Sequence-depth cap: bounds recursion (and the per-frame heads
  /// lists) on cascades too deep to ever enumerate anyway.
  static constexpr size_t kMaxDepth = 512;

  InstanceView* view_;
  const Program& program_;
  uint64_t states_left_;
  ExecContext* ctx_;
  Grounder grounder_;
  std::set<std::pair<uint64_t, uint64_t>> visited_;
  std::set<uint64_t> deleted_;  // ordered: canonical outcome rendering
  std::set<std::vector<uint64_t>> outcomes_;
  size_t best_size_ = SIZE_MAX;
  uint64_t states_visited_ = 0;
  bool out_of_budget_ = false;
};

/// State-space cap for the step DFS (the step space is NP-hard to
/// enumerate; beyond this the space degrades to inexact/undecided).
constexpr uint64_t kStepSpaceMaxStates = 2'000'000;

std::unique_ptr<RepairSpace> BuildDeterministicSpace(
    SemanticsKind kind, InstanceView* view, const Program& program,
    const RepairOptions& options, ExecContext* ctx) {
  InstanceView::State snapshot = view->SaveState();
  RepairResult result =
      SemanticsRegistry::Global().GetKind(kind).Run(view, program, options,
                                                    ctx);
  view->RestoreState(snapshot);
  // A truncated run returns a stabilizing set, but not the semantics'
  // own repair — the space would misrepresent the definition.
  bool exact = !ctx->stopped();
  return std::make_unique<EnumeratedRepairSpace>(
      std::vector<std::vector<TupleId>>{result.deleted}, exact,
      result.stats);
}

std::unique_ptr<RepairSpace> BuildStepSpace(InstanceView* view,
                                            const Program& program,
                                            const RepairOptions& options,
                                            ExecContext* ctx) {
  (void)options;
  WallTimer timer;
  InstanceView::State snapshot = view->SaveState();
  StepSpaceSearch search(view, program, kStepSpaceMaxStates, ctx);
  bool complete = search.Run();
  view->RestoreState(snapshot);
  RepairStats stats;
  stats.eval_seconds = timer.ElapsedSeconds();
  stats.total_seconds = stats.eval_seconds;
  stats.assignments = search.assignments();
  stats.iterations = search.states_visited();
  stats.optimal = complete;
  return std::make_unique<EnumeratedRepairSpace>(search.MinOutcomes(),
                                                 complete, stats);
}

std::unique_ptr<RepairSpace> BuildIndependentSpace(
    InstanceView* view, const Program& program, const RepairOptions& options,
    ExecContext* ctx) {
  return std::make_unique<SymbolicRepairSpace>(view, program, options, ctx);
}

}  // namespace

// ---------------------------------------------------------------------------
// CqaRegistry
// ---------------------------------------------------------------------------

CqaRegistry::CqaRegistry() {
  by_name_["end"] = [](InstanceView* view, const Program& program,
                       const RepairOptions& options, ExecContext* ctx) {
    return BuildDeterministicSpace(SemanticsKind::kEnd, view, program,
                                   options, ctx);
  };
  by_name_["stage"] = [](InstanceView* view, const Program& program,
                         const RepairOptions& options, ExecContext* ctx) {
    return BuildDeterministicSpace(SemanticsKind::kStage, view, program,
                                   options, ctx);
  };
  by_name_["step"] = BuildStepSpace;
  by_name_["independent"] = BuildIndependentSpace;
}

CqaRegistry& CqaRegistry::Global() {
  static CqaRegistry* registry = new CqaRegistry();
  return *registry;
}

Status CqaRegistry::Register(std::string semantics_name,
                             RepairSpaceBuilder builder) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      by_name_.emplace(std::move(semantics_name), std::move(builder));
  if (!inserted) {
    return Status::AlreadyExists("CQA space provider already registered: " +
                                 it->first);
  }
  return Status::OK();
}

StatusOr<const RepairSpaceBuilder*> CqaRegistry::Get(
    const std::string& name) const {
  // Resolve aliases ("ind") through the semantics registry first.
  StatusOr<const Semantics*> semantics =
      SemanticsRegistry::Global().Get(name);
  if (!semantics.ok()) return semantics.status();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(semantics.value()->name());
  if (it == by_name_.end()) {
    return Status::NotFound("no CQA space provider for semantics: " +
                            std::string(semantics.value()->name()));
  }
  return &it->second;
}

}  // namespace deltarepair
