// Brute-force reference path for CQA differential testing: enumerate
// the full repair space of a semantics by exhaustive search, then
// answer the query by re-evaluating it on every repair — no provenance,
// no SAT, no sharing with the production evaluator beyond the grounder.
//
//  * end / stage: one deterministic run of the registered semantics;
//  * step: plain recursive enumeration of every maximal activation
//    sequence (no memoization — deliberately different from the
//    production space's memoized DFS), keeping minimum-size outcomes;
//  * independent: subset enumeration over all live tuples in increasing
//    cardinality, keeping every stabilizing set of the first hit size.
//
// Exponential; small instances only. Returns nullopt when max_states is
// exhausted.
#ifndef DELTAREPAIR_CQA_BRUTE_FORCE_H_
#define DELTAREPAIR_CQA_BRUTE_FORCE_H_

#include <optional>
#include <vector>

#include "cqa/query.h"
#include "repair/semantics.h"

namespace deltarepair {

struct BruteForceCqaOptions {
  /// Hard cap on explored candidates/states; nullopt when hit.
  uint64_t max_states = 20'000'000;
};

/// The exact repair space of `kind` over the database's canonical
/// state: every deletion set the semantics can output (sorted sets,
/// deterministic order). The database is left unmodified.
std::optional<std::vector<std::vector<TupleId>>> EnumerateRepairSpace(
    Database* db, const Program& program, SemanticsKind kind,
    const BruteForceCqaOptions& options = {});

/// Certain and possible answers of `query` under `kind`, by evaluating
/// the query on every enumerated repair (certain = intersection,
/// possible = union). Both lists are sorted.
struct BruteForceCqaResult {
  std::vector<Tuple> certain;
  std::vector<Tuple> possible;
  uint64_t num_repairs = 0;
};

std::optional<BruteForceCqaResult> BruteForceCqa(
    Database* db, const Program& program, const Query& query,
    SemanticsKind kind, const BruteForceCqaOptions& options = {});

}  // namespace deltarepair

#endif  // DELTAREPAIR_CQA_BRUTE_FORCE_H_
