// Monotone queries for consistent query answering: a union of
// conjunctive queries (UCQ) over the base relations, with comparisons.
// Written in the delta-program surface syntax minus the '~':
//
//     Q(a, n) :- Author(a, n, o), Writes(a, p), p < 7.
//     Q(a, n) :- Author(a, n, o), Org(o, 'ERC').
//
// Queries never mention delta relations, so their answers are monotone
// under deletions: Q(D \ S) ⊆ Q(D) for every deletion set S. Grounding a
// query over the *live* instance therefore yields every answer any
// repair can have, and each answer's why-provenance — the set of
// distinct body-tuple combinations (monomials) that derive it — is a
// positive DNF over tuple survival. CQA decides, per answer, whether
// some monomial survives every repair (certain) or some repair
// (possible).
#ifndef DELTAREPAIR_CQA_QUERY_H_
#define DELTAREPAIR_CQA_QUERY_H_

#include <map>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "relation/database.h"

namespace deltarepair {

class InstanceView;
class ExecContext;

/// A resolved UCQ: one or more conjunctive rules sharing the same
/// virtual head predicate (name + arity).
struct Query {
  std::string head_name;
  size_t arity = 0;
  std::vector<Rule> rules;  // self_atom == -1, bodies resolved

  std::string ToString() const;
};

/// Parses a UCQ (see header comment for the syntax). Rules must share
/// one head predicate with a consistent arity.
StatusOr<Query> ParseQuery(std::string_view text);

/// Resolves every body atom against `db` (existence + arity). The head
/// predicate is virtual and stays unresolved. Must be called before
/// grounding.
Status ResolveQuery(Query* query, const Database& db);

/// Why-provenance of one answer tuple: each monomial is a sorted,
/// deduplicated set of base tuples whose joint survival re-derives the
/// answer. The answer survives a deletion set S iff some monomial is
/// disjoint from S.
struct AnswerProvenance {
  std::vector<std::vector<TupleId>> monomials;
};

/// All answers of `query` over the view's current live state, with
/// why-provenance, keyed by answer tuple (deterministic order: Value's
/// total order, lexicographic). Monomials are deduplicated per answer.
/// `ctx` may be null; when it trips mid-grounding the map is incomplete
/// (the caller observes ctx->stopped()).
std::map<Tuple, AnswerProvenance> GroundQuery(InstanceView* view,
                                              const Query& query,
                                              ExecContext* ctx);

/// Answer tuples only (no provenance), e.g. for evaluating the query
/// against one explicit repair in the brute-force reference path.
std::vector<Tuple> EvalQuery(InstanceView* view, const Query& query);

}  // namespace deltarepair

#endif  // DELTAREPAIR_CQA_QUERY_H_
