// Sliced per-answer entailment: certain/possible verdicts and minimal
// counterexamples decided on a query-scoped cone of the stability CNF
// (provenance/cone.h) instead of the full formula.
//
// A SlicedJudge is the per-worker face of one ConeSlicer: every verdict
// runs on a fresh throwaway solver over the answer's memoized slice, so
// judges on different threads never share solver state and the verdicts
// (and their work counters) are deterministic regardless of fan-out.
// Each judge accumulates its own SliceStats / RepairStats; the owner
// folds them after the workers join.
//
// Soundness gates — the judge *declines* (returns nullopt / kFallback)
// rather than guess, and the caller reruns on the full CNF:
//  * the cone exceeds the configured width cap (slicing would not pay);
//  * a counterexample must search outside the minimum-repair space: the
//    answer is alive in every minimum repair but might die under a
//    larger deletion set, or the cone-local Min-Ones optimum exceeds
//    the cone's share of the global optimum (both mean the smallest
//    killer may delete pinned variables the slice fixed by
//    minimality-preserving preprocessing).
#ifndef DELTAREPAIR_CQA_ENTAILMENT_H_
#define DELTAREPAIR_CQA_ENTAILMENT_H_

#include <optional>
#include <vector>

#include "cqa/repair_space.h"
#include "provenance/cone.h"
#include "repair/repair_options.h"
#include "sat/min_ones.h"

namespace deltarepair {

class SlicedJudge {
 public:
  /// `slicer` must outlive the judge and may be shared across judges.
  SlicedJudge(ConeSlicer* slicer, const SliceOptions& options,
              const MinOnesOptions& min_ones);

  /// False when slicing is disabled or the slicer is invalid; every
  /// query must then go to the full CNF (no fallback counted).
  bool enabled() const { return enabled_; }

  /// Verdicts over the minimum-repair space, or nullopt when the cone
  /// exceeds the width cap (counted as a fallback). A returned verdict
  /// with decided=false means a budget/cancel tripped mid-solve — final,
  /// not a fallback (the full CNF is bounded by the same budget).
  std::optional<CqaVerdict> Certain(const ConeSlicer::ReducedAnswer& red,
                                    ExecContext* ctx);
  std::optional<CqaVerdict> Possible(const ConeSlicer::ReducedAnswer& red,
                                     ExecContext* ctx);

  struct CexOutcome {
    enum class Kind {
      kNone,      // no counterexample exists / none found in budget
      kFound,     // deleted_vars is a stabilizing killer
      kFallback,  // soundness gate: rerun on the full CNF
    };
    Kind kind = Kind::kNone;
    /// Global deletion variables of the killer, unsorted (kFound).
    std::vector<uint32_t> deleted_vars;
    /// Whether the killer is provably the smallest overall.
    bool minimal = false;
  };
  CexOutcome Counterexample(const ConeSlicer::ReducedAnswer& red,
                            ExecContext* ctx);

  /// Solve-side counters of this judge (sliced_solve_calls,
  /// slice_fallbacks); the owner folds them post-join.
  const SliceStats& slice_stats() const { return slice_stats_; }
  /// Solver work of this judge's throwaway solvers.
  const RepairStats& repair_stats() const { return repair_stats_; }

 private:
  /// Memoized slice for the answer's cone, or nullptr past the width
  /// cap (fallback counted here).
  const ConeSlicer::Slice* SliceFor(const ConeSlicer::ReducedAnswer& red);
  /// Fresh solver primed with the slice CNF and its cardinality caps
  /// (models = the cone's minimum component repairs).
  void LoadCappedSlice(const ConeSlicer::Slice& slice, ExecContext* ctx,
                       CdclSolver* solver);

  ConeSlicer* slicer_;
  bool enabled_ = false;
  uint32_t max_cone_vars_ = 0;
  MinOnesOptions min_ones_;
  SliceStats slice_stats_;
  RepairStats repair_stats_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_CQA_ENTAILMENT_H_
