#include "cqa/cqa.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>

#include "common/timer.h"
#include "obs/trace.h"
#include "relation/instance_view.h"

namespace deltarepair {

namespace {

/// One answer's pending verdict work (parallel evaluation slot).
struct AnswerTask {
  const Tuple* values = nullptr;
  const AnswerProvenance* prov = nullptr;
  CqaVerdict certain{false, false};
  CqaVerdict possible{true, false};
  bool cached = false;
  std::optional<CqaCounterexample> cex;
};

/// Converts one finished task into its CqaAnswer and folds the
/// per-answer counters (sequential tail — keeps result order sorted).
void AppendAnswer(const CqaRequest& request, AnswerTask& task,
                  CqaResult* result) {
  CqaAnswer answer;
  answer.values = *task.values;
  answer.derivations = task.prov->monomials.size();
  result->stats.monomials += task.prov->monomials.size();
  answer.certain = task.certain.holds;
  answer.certain_decided = task.certain.decided;
  answer.possible = task.possible.holds;
  answer.possible_decided = task.possible.decided;
  answer.decided = (task.certain.decided || !request.certain) &&
                   (task.possible.decided || !request.possible);
  if (task.cex.has_value()) {
    answer.counterexample = std::move(task.cex->deleted);
    answer.counterexample_minimal = task.cex->minimal;
  }
  if (answer.certain) ++result->stats.certain_answers;
  if (answer.possible) ++result->stats.possible_answers;
  if (!answer.decided) ++result->stats.undecided_answers;
  result->answers.push_back(std::move(answer));
}

/// The per-answer verdict protocol, identical on every path: the
/// requested solver checks with the free implications (certain ⇒
/// possible, impossible ⇒ not certain), then the annotate
/// counterexample for non-certain answers (cached ones included).
template <typename Judge>
void EvaluateTask(const CqaRequest& request, Judge* judge, AnswerTask* task,
                  ExecContext* ctx) {
  Span span("cqa.judge_answer");
  span.SetArg("derivations", task->prov->monomials.size());
  if (!task->cached) {
    if (request.certain) {
      task->certain = judge->Certain(*task->prov, ctx);
    }
    if (task->certain.decided && task->certain.holds) {
      // Certain implies possible (repair spaces are non-empty).
      task->possible = {true, true};
    }
    if (request.possible && !task->possible.decided) {
      task->possible = judge->Possible(*task->prov, ctx);
    }
    if (task->possible.decided && !task->possible.holds &&
        !task->certain.decided) {
      // Impossible answers are never certain.
      task->certain = {false, true};
    }
  }
  if (request.annotate &&
      !(task->certain.decided && task->certain.holds)) {
    task->cex = judge->Counterexample(*task->prov, ctx);
  }
}

/// Phase 3, shared by the cold and warm paths: per-answer verdicts in
/// deterministic (sorted) order, with optional cache hooks. When the
/// space hands out judges and options.threads > 1, the solver work fans
/// out across workers (each with its own judge); cache lookups, cache
/// stores and the answer list stay in sorted order, so the report is
/// identical to the sequential path.
void EvaluateAnswers(const CqaRequest& request,
                     std::map<Tuple, AnswerProvenance>& grounded,
                     RepairSpace* space, const CqaAnswerHooks* hooks,
                     ExecContext* ctx, CqaResult* result) {
  Span entail_span("cqa.entail");
  entail_span.SetArg("answers", grounded.size());
  ScopedTimer t(&result->stats.entail_seconds);
  result->answers.reserve(grounded.size());

  space->PrepareJudges(grounded.size());
  std::unique_ptr<AnswerJudge> main_judge = space->NewJudge();
  if (main_judge == nullptr) {
    // Enumerated spaces: direct sequential calls on the space.
    for (auto& [values, prov] : grounded) {
      AnswerTask task;
      task.values = &values;
      task.prov = &prov;
      task.cached = hooks != nullptr && hooks->lookup &&
                    hooks->lookup(values, prov, &task.certain,
                                  &task.possible);
      EvaluateTask(request, space, &task, ctx);
      if (!task.cached && hooks != nullptr && hooks->store) {
        hooks->store(values, prov, task.certain, task.possible);
      }
      AppendAnswer(request, task, result);
    }
    return;
  }

  // Judge-based evaluation. Cache lookups run first, sequentially and
  // in sorted order (hook implementations may be stateful).
  std::vector<AnswerTask> tasks;
  tasks.reserve(grounded.size());
  for (auto& [values, prov] : grounded) {
    AnswerTask task;
    task.values = &values;
    task.prov = &prov;
    task.cached = hooks != nullptr && hooks->lookup &&
                  hooks->lookup(values, prov, &task.certain, &task.possible);
    tasks.push_back(std::move(task));
  }

  size_t workers =
      request.options.threads > 1
          ? std::min<size_t>(request.options.threads, tasks.size())
          : 1;
  if (workers <= 1) {
    for (AnswerTask& task : tasks) {
      EvaluateTask(request, main_judge.get(), &task, ctx);
    }
  } else {
    // Fan the solver work out: workers claim tasks by atomic index,
    // each with its own judge and an ExecContext slaved to the main
    // budget/token. Verdicts land in their task slots; everything
    // order-sensitive happens after the join.
    double remaining = ctx->RemainingSeconds();
    RepairOptions worker_options = request.options;
    worker_options.budget_seconds =
        std::isinf(remaining) ? 0 : std::max(remaining, 1e-9);
    std::atomic<size_t> next{0};
    const uint64_t parent_trace_id = Trace::CurrentTraceId();
    auto work = [&, parent_trace_id]() {
      TraceIdScope trace_scope(parent_trace_id);
      std::unique_ptr<AnswerJudge> judge = space->NewJudge();
      ExecContext worker_ctx(worker_options);
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) break;
        EvaluateTask(request, judge.get(), &tasks[i], &worker_ctx);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) pool.emplace_back(work);
    for (std::thread& th : pool) th.join();
    ctx->ShouldStop();  // latch a budget/cancel that tripped meanwhile
  }

  // Sequential tail: cache stores and the answer list, in sorted order.
  for (AnswerTask& task : tasks) {
    if (!task.cached && hooks != nullptr && hooks->store) {
      hooks->store(*task.values, *task.prov, task.certain, task.possible);
    }
    AppendAnswer(request, task, result);
  }
}

/// The sequential core: evaluates one request on `view` (restoring its
/// state before returning).
CqaResult AnswerQueryOnView(InstanceView* view, const Program& program,
                            const CqaRequest& request) {
  Span span("cqa.answer_query");
  WallTimer total;
  CqaResult result;

  StatusOr<const Semantics*> semantics =
      SemanticsRegistry::Global().Get(request.semantics);
  if (!semantics.ok()) {
    result.status = semantics.status();
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  result.semantics = semantics.value()->name();
  result.kind = semantics.value()->kind();
  StatusOr<const RepairSpaceBuilder*> builder =
      CqaRegistry::Global().Get(request.semantics);
  if (!builder.ok()) {
    result.status = builder.status();
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  StatusOr<Query> query = ParseQuery(request.query);
  if (!query.ok()) {
    result.status = query.status();
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  Status resolved = ResolveQuery(&query.value(), view->db());
  if (!resolved.ok()) {
    result.status = resolved;
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  result.query_head = query.value().head_name;

  ExecContext ctx(request.options);
  InstanceView::State snapshot = view->SaveState();

  // Phase 1: ground the query over the live instance. Monotonicity
  // makes Q(D) a superset of every repair's answer set, and each
  // answer's monomials are its survival DNF.
  std::map<Tuple, AnswerProvenance> grounded;
  {
    Span span("cqa.ground_query");
    ScopedTimer t(&result.stats.ground_seconds);
    grounded = GroundQuery(view, query.value(), &ctx);
  }

  // Phase 2: the semantics' repair space (builders may scratch-mutate
  // the view; restore to the grounding state afterwards).
  std::unique_ptr<RepairSpace> space;
  {
    Span span("cqa.build_space");
    ScopedTimer t(&result.stats.space_seconds);
    space = (*builder.value())(view, program, request.options, &ctx);
    view->RestoreState(snapshot);
  }
  result.stats.space_repairs = space->NumEnumerated();
  result.stats.repair_size = space->repair_size();
  result.stats.space_exact = space->exact();

  // Phase 3: per-answer verdicts, in deterministic (sorted) order.
  EvaluateAnswers(request, grounded, space.get(), nullptr, &ctx, &result);
  space->AddStats(&result.stats.repair);
  space->AddSliceStats(&result.stats.slice);

  view->RestoreState(snapshot);
  result.stats.answers = result.answers.size();
  result.termination = ctx.reason();
  if (result.termination == TerminationReason::kComplete &&
      !result.stats.space_exact) {
    // An internal cap (the step space's state budget, the Min-Ones
    // work/time limits) truncated the space without tripping the
    // request's own budget; a kComplete report would claim verdicts
    // this run never proved.
    result.termination = TerminationReason::kBudgetExhausted;
  }
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace

CqaResult AnswerQueryWithSpace(InstanceView* view, const CqaRequest& request,
                               RepairSpace* space,
                               const CqaAnswerHooks* hooks) {
  Span span("cqa.answer_query_warm");
  WallTimer total;
  CqaResult result;

  StatusOr<const Semantics*> semantics =
      SemanticsRegistry::Global().Get(request.semantics);
  if (!semantics.ok()) {
    result.status = semantics.status();
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  result.semantics = semantics.value()->name();
  result.kind = semantics.value()->kind();
  StatusOr<Query> query = ParseQuery(request.query);
  if (!query.ok()) {
    result.status = query.status();
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  Status resolved = ResolveQuery(&query.value(), view->db());
  if (!resolved.ok()) {
    result.status = resolved;
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  result.query_head = query.value().head_name;

  ExecContext ctx(request.options);

  // Grounding still runs fresh — it is cheap next to space
  // construction, which is exactly what the warm path amortizes.
  std::map<Tuple, AnswerProvenance> grounded;
  {
    Span ground_span("cqa.ground_query");
    ScopedTimer t(&result.stats.ground_seconds);
    grounded = GroundQuery(view, query.value(), &ctx);
  }
  result.stats.space_repairs = space->NumEnumerated();
  result.stats.repair_size = space->repair_size();
  result.stats.space_exact = space->exact();

  EvaluateAnswers(request, grounded, space, hooks, &ctx, &result);
  space->AddStats(&result.stats.repair);
  space->AddSliceStats(&result.stats.slice);

  result.stats.answers = result.answers.size();
  result.termination = ctx.reason();
  if (result.termination == TerminationReason::kComplete &&
      !result.stats.space_exact) {
    result.termination = TerminationReason::kBudgetExhausted;
  }
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

std::vector<Tuple> CqaResult::CertainAnswers() const {
  std::vector<Tuple> out;
  for (const CqaAnswer& a : answers) {
    if (a.certain) out.push_back(a.values);
  }
  return out;
}

std::vector<Tuple> CqaResult::PossibleAnswers() const {
  std::vector<Tuple> out;
  for (const CqaAnswer& a : answers) {
    if (a.possible) out.push_back(a.values);
  }
  return out;
}

CqaResult AnswerQuery(RepairEngine* engine, const CqaRequest& request) {
  return AnswerQueryOnView(&engine->db()->base_view(), engine->program(),
                           request);
}

CqaResult AnswerQueryOnSnapshot(RepairEngine* engine,
                                const CqaRequest& request) {
  InstanceView view = engine->db()->SnapshotView();
  return AnswerQueryOnView(&view, engine->program(), request);
}

std::vector<CqaResult> AnswerQueryBatch(
    RepairEngine* engine, const std::vector<CqaRequest>& requests) {
  int threads = engine->default_options().threads;
  for (const CqaRequest& request : requests) {
    threads = std::max(threads, request.options.threads);
  }
  return AnswerQueryBatch(engine, requests, threads);
}

std::vector<CqaResult> AnswerQueryBatch(
    RepairEngine* engine, const std::vector<CqaRequest>& requests,
    int num_threads) {
  std::vector<CqaResult> out(requests.size());
  if (requests.empty()) return out;
  size_t workers = num_threads > 1 ? static_cast<size_t>(num_threads) : 1;
  workers = std::min(workers, requests.size());

  // Same backbone as RepairEngine::RunBatch: thread-local snapshot
  // views over shared storage, dynamic request claiming, outcomes in
  // request order.
  std::atomic<size_t> next{0};
  auto work = [&]() {
    InstanceView view = engine->db()->SnapshotView();
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= requests.size()) break;
      if (workers > 1 && requests[i].options.threads > 1) {
        // The thread budget is spent on batch workers; a per-request
        // solver portfolio on top would oversubscribe (and make the
        // batch outcome depend on worker scheduling).
        CqaRequest clamped = requests[i];
        clamped.options.threads = 1;
        out[i] = AnswerQueryOnView(&view, engine->program(), clamped);
      } else {
        out[i] = AnswerQueryOnView(&view, engine->program(), requests[i]);
      }
    }
  };

  if (workers <= 1) {
    work();
    return out;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (std::thread& t : pool) t.join();
  return out;
}

}  // namespace deltarepair
