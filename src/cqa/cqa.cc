#include "cqa/cqa.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/timer.h"
#include "relation/instance_view.h"

namespace deltarepair {

namespace {

/// Phase 3, shared by the cold and warm paths: per-answer verdicts in
/// deterministic (sorted) order, with optional cache hooks.
void EvaluateAnswers(const CqaRequest& request,
                     std::map<Tuple, AnswerProvenance>& grounded,
                     RepairSpace* space, const CqaAnswerHooks* hooks,
                     ExecContext* ctx, CqaResult* result) {
  ScopedTimer t(&result->stats.entail_seconds);
  result->answers.reserve(grounded.size());
  for (auto& [values, prov] : grounded) {
    CqaAnswer answer;
    answer.values = values;
    answer.derivations = prov.monomials.size();
    result->stats.monomials += prov.monomials.size();

    CqaVerdict certain{false, false};
    CqaVerdict possible{true, false};
    bool cached = hooks != nullptr && hooks->lookup &&
                  hooks->lookup(values, prov, &certain, &possible);
    if (!cached) {
      certain = {false, false};
      possible = {true, false};
      if (request.certain) {
        certain = space->Certain(prov, ctx);
      }
      if (certain.decided && certain.holds) {
        // Certain implies possible (repair spaces are non-empty).
        possible = {true, true};
      }
      if (request.possible && !possible.decided) {
        possible = space->Possible(prov, ctx);
      }
      if (possible.decided && !possible.holds && !certain.decided) {
        // Impossible answers are never certain.
        certain = {false, true};
      }
      if (hooks != nullptr && hooks->store) {
        hooks->store(values, prov, certain, possible);
      }
    }
    answer.certain = certain.holds;
    answer.certain_decided = certain.decided;
    answer.possible = possible.holds;
    answer.possible_decided = possible.decided;
    answer.decided = (certain.decided || !request.certain) &&
                     (possible.decided || !request.possible);
    if (request.annotate && !(certain.decided && certain.holds)) {
      std::optional<CqaCounterexample> cex = space->Counterexample(prov, ctx);
      if (cex.has_value()) {
        answer.counterexample = std::move(cex->deleted);
        answer.counterexample_minimal = cex->minimal;
      }
    }

    if (answer.certain) ++result->stats.certain_answers;
    if (answer.possible) ++result->stats.possible_answers;
    if (!answer.decided) ++result->stats.undecided_answers;
    result->answers.push_back(std::move(answer));
  }
}

/// The sequential core: evaluates one request on `view` (restoring its
/// state before returning).
CqaResult AnswerQueryOnView(InstanceView* view, const Program& program,
                            const CqaRequest& request) {
  WallTimer total;
  CqaResult result;

  StatusOr<const Semantics*> semantics =
      SemanticsRegistry::Global().Get(request.semantics);
  if (!semantics.ok()) {
    result.status = semantics.status();
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  result.semantics = semantics.value()->name();
  result.kind = semantics.value()->kind();
  StatusOr<const RepairSpaceBuilder*> builder =
      CqaRegistry::Global().Get(request.semantics);
  if (!builder.ok()) {
    result.status = builder.status();
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  StatusOr<Query> query = ParseQuery(request.query);
  if (!query.ok()) {
    result.status = query.status();
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  Status resolved = ResolveQuery(&query.value(), view->db());
  if (!resolved.ok()) {
    result.status = resolved;
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  result.query_head = query.value().head_name;

  ExecContext ctx(request.options);
  InstanceView::State snapshot = view->SaveState();

  // Phase 1: ground the query over the live instance. Monotonicity
  // makes Q(D) a superset of every repair's answer set, and each
  // answer's monomials are its survival DNF.
  std::map<Tuple, AnswerProvenance> grounded;
  {
    ScopedTimer t(&result.stats.ground_seconds);
    grounded = GroundQuery(view, query.value(), &ctx);
  }

  // Phase 2: the semantics' repair space (builders may scratch-mutate
  // the view; restore to the grounding state afterwards).
  std::unique_ptr<RepairSpace> space;
  {
    ScopedTimer t(&result.stats.space_seconds);
    space = (*builder.value())(view, program, request.options, &ctx);
    view->RestoreState(snapshot);
  }
  result.stats.space_repairs = space->NumEnumerated();
  result.stats.repair_size = space->repair_size();
  result.stats.space_exact = space->exact();

  // Phase 3: per-answer verdicts, in deterministic (sorted) order.
  EvaluateAnswers(request, grounded, space.get(), nullptr, &ctx, &result);
  space->AddStats(&result.stats.repair);

  view->RestoreState(snapshot);
  result.stats.answers = result.answers.size();
  result.termination = ctx.reason();
  if (result.termination == TerminationReason::kComplete &&
      !result.stats.space_exact) {
    // An internal cap (the step space's state budget, the Min-Ones
    // work/time limits) truncated the space without tripping the
    // request's own budget; a kComplete report would claim verdicts
    // this run never proved.
    result.termination = TerminationReason::kBudgetExhausted;
  }
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace

CqaResult AnswerQueryWithSpace(InstanceView* view, const CqaRequest& request,
                               RepairSpace* space,
                               const CqaAnswerHooks* hooks) {
  WallTimer total;
  CqaResult result;

  StatusOr<const Semantics*> semantics =
      SemanticsRegistry::Global().Get(request.semantics);
  if (!semantics.ok()) {
    result.status = semantics.status();
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  result.semantics = semantics.value()->name();
  result.kind = semantics.value()->kind();
  StatusOr<Query> query = ParseQuery(request.query);
  if (!query.ok()) {
    result.status = query.status();
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  Status resolved = ResolveQuery(&query.value(), view->db());
  if (!resolved.ok()) {
    result.status = resolved;
    result.termination = TerminationReason::kInvalidProgram;
    return result;
  }
  result.query_head = query.value().head_name;

  ExecContext ctx(request.options);

  // Grounding still runs fresh — it is cheap next to space
  // construction, which is exactly what the warm path amortizes.
  std::map<Tuple, AnswerProvenance> grounded;
  {
    ScopedTimer t(&result.stats.ground_seconds);
    grounded = GroundQuery(view, query.value(), &ctx);
  }
  result.stats.space_repairs = space->NumEnumerated();
  result.stats.repair_size = space->repair_size();
  result.stats.space_exact = space->exact();

  EvaluateAnswers(request, grounded, space, hooks, &ctx, &result);
  space->AddStats(&result.stats.repair);

  result.stats.answers = result.answers.size();
  result.termination = ctx.reason();
  if (result.termination == TerminationReason::kComplete &&
      !result.stats.space_exact) {
    result.termination = TerminationReason::kBudgetExhausted;
  }
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

std::vector<Tuple> CqaResult::CertainAnswers() const {
  std::vector<Tuple> out;
  for (const CqaAnswer& a : answers) {
    if (a.certain) out.push_back(a.values);
  }
  return out;
}

std::vector<Tuple> CqaResult::PossibleAnswers() const {
  std::vector<Tuple> out;
  for (const CqaAnswer& a : answers) {
    if (a.possible) out.push_back(a.values);
  }
  return out;
}

CqaResult AnswerQuery(RepairEngine* engine, const CqaRequest& request) {
  return AnswerQueryOnView(&engine->db()->base_view(), engine->program(),
                           request);
}

CqaResult AnswerQueryOnSnapshot(RepairEngine* engine,
                                const CqaRequest& request) {
  InstanceView view = engine->db()->SnapshotView();
  return AnswerQueryOnView(&view, engine->program(), request);
}

std::vector<CqaResult> AnswerQueryBatch(
    RepairEngine* engine, const std::vector<CqaRequest>& requests) {
  int threads = engine->default_options().threads;
  for (const CqaRequest& request : requests) {
    threads = std::max(threads, request.options.threads);
  }
  return AnswerQueryBatch(engine, requests, threads);
}

std::vector<CqaResult> AnswerQueryBatch(
    RepairEngine* engine, const std::vector<CqaRequest>& requests,
    int num_threads) {
  std::vector<CqaResult> out(requests.size());
  if (requests.empty()) return out;
  size_t workers = num_threads > 1 ? static_cast<size_t>(num_threads) : 1;
  workers = std::min(workers, requests.size());

  // Same backbone as RepairEngine::RunBatch: thread-local snapshot
  // views over shared storage, dynamic request claiming, outcomes in
  // request order.
  std::atomic<size_t> next{0};
  auto work = [&]() {
    InstanceView view = engine->db()->SnapshotView();
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= requests.size()) break;
      if (workers > 1 && requests[i].options.threads > 1) {
        // The thread budget is spent on batch workers; a per-request
        // solver portfolio on top would oversubscribe (and make the
        // batch outcome depend on worker scheduling).
        CqaRequest clamped = requests[i];
        clamped.options.threads = 1;
        out[i] = AnswerQueryOnView(&view, engine->program(), clamped);
      } else {
        out[i] = AnswerQueryOnView(&view, engine->program(), requests[i]);
      }
    }
  };

  if (workers <= 1) {
    work();
    return out;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (std::thread& t : pool) t.join();
  return out;
}

}  // namespace deltarepair
