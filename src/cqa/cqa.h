// Consistent query answering over repair semantics: which answers of a
// monotone query survive repair?
//
// The CqaRequest/CqaResult pair mirrors the RepairRequest/RepairOutcome
// serving surface: a request names a semantics (registry name), carries
// a query, and reuses RepairOptions for budgets, cancellation, solver
// knobs and batch threading. Evaluation grounds the query once over the
// live instance (answers + why-provenance), builds the semantics'
// repair space (cqa/repair_space.h), and decides per answer:
//
//  * certain  — the answer is in Q(D \ S) for *every* repair S;
//  * possible — the answer is in Q(D \ S) for *some* repair S;
//  * annotated mode adds, per non-certain answer, a minimal
//    counterexample deletion set killing it (Min-Ones machinery).
//
// Anytime contract: a budget or cancellation never invalidates emitted
// verdicts. Answers the run could not decide are reported with
// decided=false and the conservative bounds (certain=false,
// possible=true); the result's termination says why — including when
// the truncation came from an internal cap (the step space's state
// budget, the Min-Ones work/time limits) rather than the request's own
// budget, in which case termination reports kBudgetExhausted even
// though options.budget_seconds never tripped. When the budget trips
// during query grounding itself, the answer list may additionally be
// incomplete (kBudgetExhausted/kCancelled signals both cases).
#ifndef DELTAREPAIR_CQA_CQA_H_
#define DELTAREPAIR_CQA_CQA_H_

#include <functional>
#include <string>
#include <vector>

#include "cqa/query.h"
#include "cqa/repair_space.h"
#include "repair/repair_engine.h"

namespace deltarepair {

/// One unit of CQA serving traffic.
struct CqaRequest {
  CqaRequest() = default;
  CqaRequest(std::string semantics_name, std::string query_text)
      : semantics(std::move(semantics_name)),
        query(std::move(query_text)) {}

  /// Registry name: "end", "stage", "step", "independent" (or an alias).
  std::string semantics = "independent";
  /// UCQ text (see cqa/query.h for the syntax).
  std::string query;
  /// Which verdicts to compute. Skipping one saves its solver calls;
  /// the skipped flag is reported with its conservative bound and
  /// certain_decided/possible_decided false (unless implied for free by
  /// the other verdict).
  bool certain = true;
  bool possible = true;
  /// Attach a minimal counterexample to every non-certain answer.
  bool annotate = false;
  /// Budget / cancellation / threads / solver knobs (shared shape with
  /// repair requests; step/record_provenance fields are ignored).
  RepairOptions options;
  /// Observability correlation id (0 = none); see RepairRequest.
  uint64_t trace_id = 0;
};

/// Verdicts for one answer tuple of Q(D).
struct CqaAnswer {
  Tuple values;
  bool certain = false;
  bool possible = false;
  /// Per-verdict proof status: false when the verdict was skipped by the
  /// request flags, left undecided by a budget/cancellation or an
  /// inexact repair space — certain/possible then carry the
  /// conservative bounds (certain=false, possible=true). One verdict
  /// can imply the other (certain ⇒ possible, impossible ⇒ not
  /// certain), so a skipped flag may still come back decided for free.
  bool certain_decided = false;
  bool possible_decided = false;
  /// Every verdict the request asked for is proven.
  bool decided = false;
  /// Distinct why-provenance monomials over the live instance.
  uint64_t derivations = 0;
  /// Annotated mode, non-certain answers: a smallest repair of the
  /// space under which the answer disappears (empty when none was
  /// found in budget).
  std::vector<TupleId> counterexample;
  /// True when `counterexample` is provably a minimum-size killing
  /// member of the space (for the independent space: the smallest
  /// stabilizing set killing the answer, proved by Min-Ones).
  bool counterexample_minimal = false;
};

/// Phase timing and work counters of one CQA evaluation.
struct CqaStats {
  double ground_seconds = 0;  // query grounding + provenance
  double space_seconds = 0;   // repair-space construction
  double entail_seconds = 0;  // per-answer certain/possible/annotate
  double total_seconds = 0;

  uint64_t answers = 0;
  uint64_t monomials = 0;        // total distinct monomials
  uint64_t certain_answers = 0;
  uint64_t possible_answers = 0;
  uint64_t undecided_answers = 0;

  /// Repair-space shape: number of explicitly enumerated repairs (0 for
  /// the symbolic independent space), uniform repair cardinality, and
  /// whether the space was exact.
  uint64_t space_repairs = 0;
  uint32_t repair_size = 0;
  bool space_exact = false;

  /// Aggregated engine counters: repair-space construction (grounding,
  /// CNF, Min-Ones) plus every CQA entailment solve — sat_solve_calls
  /// here covers the assumption-based certain/possible checks too.
  RepairStats repair;

  /// Cone-of-influence slicing layer: cone decomposition / slice build
  /// timers split out of space/entail time, slice sizes, how many
  /// verdicts ran sliced vs fell back to the full CNF, and the warm
  /// path's long-lived-solver scrub counters.
  SliceStats slice;
};

/// Status-or-result shape of one executed CQA request.
struct CqaResult {
  Status status;
  TerminationReason termination = TerminationReason::kComplete;
  std::string semantics;      // resolved primary registry name
  SemanticsKind kind = SemanticsKind::kEnd;
  std::string query_head;     // the query's output predicate
  /// Every answer of Q(D) (a superset of every repair's answers, by
  /// monotonicity), sorted by value; verdicts per CqaRequest flags.
  std::vector<CqaAnswer> answers;
  CqaStats stats;

  bool ok() const { return status.ok(); }

  /// Convenience extraction of the verdict sets.
  std::vector<Tuple> CertainAnswers() const;
  std::vector<Tuple> PossibleAnswers() const;
};

/// Executes one CQA request against the engine's resolved program and
/// canonical database state. The state is restored afterwards (CQA
/// never applies repairs).
CqaResult AnswerQuery(RepairEngine* engine, const CqaRequest& request);

/// Per-answer verdict shortcuts for the warm (incremental) path. When
/// `lookup` returns true the evaluator takes the filled verdicts as
/// proven and skips its solver calls for that answer; otherwise it
/// computes verdicts normally and offers them to `store`. Counterexample
/// annotation is never cached (it always runs for non-certain answers in
/// annotated mode). Either hook may be empty.
struct CqaAnswerHooks {
  std::function<bool(const Tuple& answer, const AnswerProvenance& prov,
                     CqaVerdict* certain, CqaVerdict* possible)>
      lookup;
  std::function<void(const Tuple& answer, const AnswerProvenance& prov,
                     const CqaVerdict& certain, const CqaVerdict& possible)>
      store;
};

/// Warm-path entry: evaluates `request` on the view's current live
/// state against a caller-prepared repair space (borrowed, not owned —
/// IncrementalEngine builds it from warm state; the cold entry points
/// above build spaces from the CqaRegistry per request instead). The
/// query is still parsed, resolved and grounded fresh — grounding is
/// cheap next to space construction. `hooks` (nullable) short-circuits
/// per-answer verdicts from a cache. The view is only read.
CqaResult AnswerQueryWithSpace(InstanceView* view, const CqaRequest& request,
                               RepairSpace* space,
                               const CqaAnswerHooks* hooks);

/// Executes one CQA request on a fresh snapshot view of the canonical
/// state, leaving it untouched. Safe to call from many threads at once
/// as long as nothing mutates storage or the canonical state meanwhile
/// — the server's concurrent read path.
CqaResult AnswerQueryOnSnapshot(RepairEngine* engine,
                                const CqaRequest& request);

/// Executes many CQA requests, each against the same initial state.
/// Worker count: the maximum options.threads across the requests
/// (fallback engine default); <= 1 runs sequentially. Workers evaluate
/// on thread-local snapshot views over shared storage, so outcomes are
/// order-preserving and — unbudgeted, uncancelled — identical to the
/// sequential path.
std::vector<CqaResult> AnswerQueryBatch(RepairEngine* engine,
                                        const std::vector<CqaRequest>& requests);
std::vector<CqaResult> AnswerQueryBatch(RepairEngine* engine,
                                        const std::vector<CqaRequest>& requests,
                                        int num_threads);

}  // namespace deltarepair

#endif  // DELTAREPAIR_CQA_CQA_H_
