#include "cqa/entailment.h"

#include <algorithm>
#include <cmath>

#include "sat/totalizer.h"

namespace deltarepair {

SlicedJudge::SlicedJudge(ConeSlicer* slicer, const SliceOptions& options,
                         const MinOnesOptions& min_ones)
    : slicer_(slicer), min_ones_(min_ones) {
  enabled_ = options.enable && slicer != nullptr && slicer->valid();
  if (!enabled_) return;
  double cap = options.max_cone_fraction *
               static_cast<double>(slicer->num_vars());
  max_cone_vars_ = std::max<uint32_t>(32, static_cast<uint32_t>(cap));
}

const ConeSlicer::Slice* SlicedJudge::SliceFor(
    const ConeSlicer::ReducedAnswer& red) {
  const ConeSlicer::Slice* slice =
      slicer_->GetSlice(red.seeds, max_cone_vars_);
  if (slice == nullptr) ++slice_stats_.slice_fallbacks;
  return slice;
}

void SlicedJudge::LoadCappedSlice(const ConeSlicer::Slice& slice,
                                  ExecContext* ctx, CdclSolver* solver) {
  SolverOptions* opts = solver->mutable_options();
  opts->learning = min_ones_.enable_learning;
  opts->restarts = min_ones_.enable_restarts;
  opts->inprocessing = false;  // throwaway solver, one Solve call
  double remaining = ctx->RemainingSeconds();
  opts->time_limit_seconds =
      std::isinf(remaining) ? 0 : std::max(remaining, 1e-9);
  opts->cancel =
      ctx->cancel_token() != nullptr ? ctx->cancel_token()->flag() : nullptr;
  solver->AddCnf(slice.cnf);
  for (const ConeSlicer::Slice::Cap& cap : slice.caps) {
    if (cap.bound == 0) {
      for (Lit l : cap.inputs) solver->AddClause({-l});
      continue;
    }
    std::vector<Lit> outputs =
        BuildTotalizer(solver, cap.inputs, cap.bound + 1);
    if (outputs.size() > cap.bound) {
      solver->AddClause({-outputs[cap.bound]});
    }
  }
}

std::optional<CqaVerdict> SlicedJudge::Certain(
    const ConeSlicer::ReducedAnswer& red, ExecContext* ctx) {
  // Constant-propagated outcomes: no solver, no slice.
  if (red.untouched || red.alive) return CqaVerdict{true, true};
  if (red.no_survivor) return CqaVerdict{false, true};
  if (ctx->ShouldStop()) return CqaVerdict{false, false};
  const ConeSlicer::Slice* slice = SliceFor(red);
  if (slice == nullptr) return std::nullopt;

  CdclSolver solver;
  LoadCappedSlice(*slice, ctx, &solver);
  // ¬φ over the cone: every surviving monomial loses an open tuple.
  for (const std::vector<uint32_t>& mono : red.monomials) {
    std::vector<Lit> clause;
    clause.reserve(mono.size());
    for (uint32_t v : mono) {
      clause.push_back(PosLit(slice->local_of_global.at(v)));
    }
    solver.AddClause(std::move(clause));
  }
  ++slice_stats_.sliced_solve_calls;
  SolveStatus status = solver.Solve();
  repair_stats_.AddSolver(solver.stats());
  if (status == SolveStatus::kUnknown) {
    ctx->ShouldStop();  // latch the budget/cancel reason
    return CqaVerdict{false, false};
  }
  return CqaVerdict{status == SolveStatus::kUnsat, true};
}

std::optional<CqaVerdict> SlicedJudge::Possible(
    const ConeSlicer::ReducedAnswer& red, ExecContext* ctx) {
  if (red.untouched || red.alive) return CqaVerdict{true, true};
  if (red.no_survivor) return CqaVerdict{false, true};
  if (ctx->ShouldStop()) return CqaVerdict{true, false};
  const ConeSlicer::Slice* slice = SliceFor(red);
  if (slice == nullptr) return std::nullopt;

  CdclSolver solver;
  LoadCappedSlice(*slice, ctx, &solver);
  // φ over the cone: some surviving monomial keeps all its open tuples
  // (Tseitin monomial variables; pinned tuples are already accounted:
  // forced-kept survive every minimum repair, dead monomials are gone).
  std::vector<Lit> some_monomial;
  some_monomial.reserve(red.monomials.size());
  for (const std::vector<uint32_t>& mono : red.monomials) {
    const Lit mv = PosLit(solver.NewVar());
    some_monomial.push_back(mv);
    for (uint32_t v : mono) {
      solver.AddClause({-mv, NegLit(slice->local_of_global.at(v))});
    }
  }
  solver.AddClause(std::move(some_monomial));
  ++slice_stats_.sliced_solve_calls;
  SolveStatus status = solver.Solve();
  repair_stats_.AddSolver(solver.stats());
  if (status == SolveStatus::kUnknown) {
    ctx->ShouldStop();
    return CqaVerdict{true, false};
  }
  return CqaVerdict{status == SolveStatus::kSat, true};
}

SlicedJudge::CexOutcome SlicedJudge::Counterexample(
    const ConeSlicer::ReducedAnswer& red, ExecContext* ctx) {
  CexOutcome out;
  if (red.untouched) return out;  // unkillable by any repair
  if (red.alive) {
    // Survives every minimum repair; the smallest killer (if any)
    // deletes pinned tuples the slice fixed — full-CNF territory.
    out.kind = CexOutcome::Kind::kFallback;
    return out;
  }
  if (red.no_survivor) {
    // Every minimum repair kills the answer; the global optimum itself
    // (empty-cone composition) is a smallest killer.
    out.kind = CexOutcome::Kind::kFound;
    out.deleted_vars = slicer_->ComposeKiller(
        ConeSlicer::Slice{}, std::vector<bool>{});
    out.minimal = true;
    return out;
  }
  const ConeSlicer::Slice* slice = SliceFor(red);
  if (slice == nullptr) {
    out.kind = CexOutcome::Kind::kFallback;
    return out;
  }

  // Min-Ones over the cone's residual clauses ∧ ¬φ — deliberately
  // without the cardinality caps: the smallest killer may exceed the
  // cone's share of the optimum.
  Cnf cnf = slice->cnf;
  for (const std::vector<uint32_t>& mono : red.monomials) {
    std::vector<Lit> clause;
    clause.reserve(mono.size());
    for (uint32_t v : mono) {
      clause.push_back(PosLit(slice->local_of_global.at(v)));
    }
    cnf.AddClause(std::move(clause));
  }
  MinOnesOptions options = min_ones_;
  options.time_limit_seconds =
      std::min(options.time_limit_seconds, ctx->RemainingSeconds());
  if (ctx->cancel_token() != nullptr) {
    options.cancel = ctx->cancel_token()->flag();
  }
  ++slice_stats_.sliced_solve_calls;
  MinOnesResult solved = MinOnesSat(cnf, options);
  repair_stats_.AddSolver(solved.solver);
  if (!solved.satisfiable) {
    if (!solved.optimal) {
      // Budget tripped before any model; nothing to report.
      ctx->ShouldStop();
      return out;
    }
    // Proven: no killer stays within the cone's residual space. One may
    // still exist deleting pinned tuples — the full CNF must decide.
    out.kind = CexOutcome::Kind::kFallback;
    return out;
  }
  if (solved.optimal && solved.num_true > slice->cone_cost) {
    // The composed killer would exceed the global optimum k; a smaller
    // killer deleting pinned tuples may exist, so a "minimal"
    // claim here would be unsound.
    out.kind = CexOutcome::Kind::kFallback;
    return out;
  }
  out.kind = CexOutcome::Kind::kFound;
  out.deleted_vars = slicer_->ComposeKiller(*slice, solved.model);
  // Local optimum matching the cone's share of k composes into a
  // global minimum repair — provably the smallest killer overall.
  out.minimal = solved.optimal && solved.num_true == slice->cone_cost;
  return out;
}

}  // namespace deltarepair
