#include "cqa/brute_force.h"

#include <algorithm>
#include <set>

#include "datalog/grounder.h"
#include "relation/instance_view.h"
#include "repair/exact.h"
#include "repair/semantics_registry.h"
#include "repair/stability.h"

namespace deltarepair {

namespace {

/// All minimum-size outcomes of maximal activation sequences, by plain
/// recursive enumeration (every interleaving is replayed; only the
/// state budget bounds it).
class PlainStepEnumerator {
 public:
  PlainStepEnumerator(Database* db, const Program& program, uint64_t budget)
      : db_(db), program_(program), budget_(budget), grounder_(db) {}

  bool Run() {
    Dfs();
    return !out_of_budget_;
  }

  std::vector<std::vector<TupleId>> MinOutcomes() const {
    std::vector<std::vector<TupleId>> out;
    for (const std::vector<uint64_t>& packed : outcomes_) {
      if (packed.size() != best_size_) continue;
      std::vector<TupleId> repair;
      repair.reserve(packed.size());
      for (uint64_t p : packed) repair.push_back(TupleId::Unpack(p));
      out.push_back(std::move(repair));
    }
    return out;
  }

 private:
  void Dfs() {
    if (out_of_budget_ || budget_-- == 0) {
      out_of_budget_ = true;
      return;
    }
    std::set<uint64_t> heads;
    for (size_t i = 0; i < program_.rules().size(); ++i) {
      grounder_.EnumerateRule(program_.rules()[i], static_cast<int>(i),
                              BaseMatch::kLive, DeltaMatch::kCurrent,
                              [&](const GroundAssignment& ga) {
                                heads.insert(ga.head.Pack());
                                return true;
                              });
    }
    if (heads.empty()) {
      std::vector<uint64_t> outcome(deleted_.begin(), deleted_.end());
      best_size_ = std::min<size_t>(best_size_, outcome.size());
      outcomes_.insert(std::move(outcome));
      return;
    }
    for (uint64_t packed : heads) {
      TupleId t = TupleId::Unpack(packed);
      db_->MarkDeleted(t);
      deleted_.insert(packed);
      Dfs();
      deleted_.erase(packed);
      db_->UnmarkDeleted(t);
      if (out_of_budget_) return;
    }
  }

  Database* db_;
  const Program& program_;
  uint64_t budget_;
  Grounder grounder_;
  std::set<uint64_t> deleted_;
  std::set<std::vector<uint64_t>> outcomes_;
  size_t best_size_ = SIZE_MAX;
  bool out_of_budget_ = false;
};

/// Every stabilizing subset of the live tuples at the smallest
/// cardinality that has one (Def. 3.3's argmin), by the same k-subset
/// sweep as ExactIndependent (shared ForEachSubset).
std::optional<std::vector<std::vector<TupleId>>> EnumerateIndependent(
    Database* db, const Program& program, uint64_t budget) {
  std::vector<TupleId> universe = db->LiveTupleIds();
  std::vector<std::vector<TupleId>> found;
  for (size_t k = 0; k <= universe.size(); ++k) {
    ForEachSubset(universe.size(), k, &budget,
                  [&](const std::vector<size_t>& idx) {
                    std::vector<TupleId> candidate;
                    candidate.reserve(idx.size());
                    for (size_t i : idx) candidate.push_back(universe[i]);
                    if (IsStabilizingSet(db, program, candidate)) {
                      found.push_back(std::move(candidate));
                    }
                    return false;  // keep going: collect every hit at k
                  });
    if (budget == 0) return std::nullopt;
    if (!found.empty()) return found;
  }
  return found;  // unreachable: D itself always stabilizes
}

}  // namespace

std::optional<std::vector<std::vector<TupleId>>> EnumerateRepairSpace(
    Database* db, const Program& program, SemanticsKind kind,
    const BruteForceCqaOptions& options) {
  Database::State snapshot = db->SaveState();
  std::optional<std::vector<std::vector<TupleId>>> out;
  switch (kind) {
    case SemanticsKind::kEnd:
    case SemanticsKind::kStage: {
      ExecContext ctx;
      RepairResult result = SemanticsRegistry::Global().GetKind(kind).Run(
          db, program, RepairOptions{}, &ctx);
      out = std::vector<std::vector<TupleId>>{result.deleted};
      break;
    }
    case SemanticsKind::kStep: {
      PlainStepEnumerator search(db, program, options.max_states);
      if (search.Run()) out = search.MinOutcomes();
      break;
    }
    case SemanticsKind::kIndependent:
      out = EnumerateIndependent(db, program, options.max_states);
      break;
  }
  db->RestoreState(snapshot);
  if (out.has_value()) {
    for (std::vector<TupleId>& r : *out) std::sort(r.begin(), r.end());
    std::sort(out->begin(), out->end());
  }
  return out;
}

std::optional<BruteForceCqaResult> BruteForceCqa(
    Database* db, const Program& program, const Query& query,
    SemanticsKind kind, const BruteForceCqaOptions& options) {
  std::optional<std::vector<std::vector<TupleId>>> repairs =
      EnumerateRepairSpace(db, program, kind, options);
  if (!repairs.has_value()) return std::nullopt;

  BruteForceCqaResult result;
  result.num_repairs = repairs->size();
  std::set<Tuple> certain;
  std::set<Tuple> possible;
  InstanceView view = db->SnapshotView();
  InstanceView::State initial = view.SaveState();
  bool first = true;
  for (const std::vector<TupleId>& repair : *repairs) {
    for (const TupleId& t : repair) view.MarkDeleted(t);
    std::vector<Tuple> answers = EvalQuery(&view, query);
    view.RestoreState(initial);
    std::set<Tuple> here(answers.begin(), answers.end());
    possible.insert(here.begin(), here.end());
    if (first) {
      certain = std::move(here);
      first = false;
    } else {
      std::set<Tuple> kept;
      std::set_intersection(certain.begin(), certain.end(), here.begin(),
                            here.end(),
                            std::inserter(kept, kept.begin()));
      certain = std::move(kept);
    }
  }
  result.certain.assign(certain.begin(), certain.end());
  result.possible.assign(possible.begin(), possible.end());
  return result;
}

}  // namespace deltarepair
