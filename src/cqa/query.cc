#include "cqa/query.h"

#include <algorithm>

#include "common/string_util.h"
#include "datalog/grounder.h"
#include "datalog/parser.h"
#include "relation/instance_view.h"
#include "repair/repair_options.h"

namespace deltarepair {

namespace {

/// Where each head term's value comes from in a ground assignment:
/// a constant, or (body atom, column) of the variable's first occurrence.
struct HeadSource {
  bool is_const = false;
  Value constant;
  int atom = -1;
  int column = -1;
};

std::vector<HeadSource> HeadPlan(const Rule& rule) {
  std::vector<HeadSource> plan;
  plan.reserve(rule.head.terms.size());
  for (const Term& t : rule.head.terms) {
    HeadSource src;
    if (t.is_const()) {
      src.is_const = true;
      src.constant = t.constant;
    } else {
      for (size_t a = 0; a < rule.body.size() && src.atom < 0; ++a) {
        const auto& terms = rule.body[a].terms;
        for (size_t c = 0; c < terms.size(); ++c) {
          if (terms[c].is_var() && terms[c].var == t.var) {
            src.atom = static_cast<int>(a);
            src.column = static_cast<int>(c);
            break;
          }
        }
      }
      // ParseQueryRules guarantees head variables are body-bound.
      DR_CHECK_MSG(src.atom >= 0, "unsafe query head variable");
    }
    plan.push_back(std::move(src));
  }
  return plan;
}

Tuple AnswerOf(const std::vector<HeadSource>& plan, const Database& db,
               const GroundAssignment& ga) {
  Tuple answer;
  answer.reserve(plan.size());
  for (const HeadSource& src : plan) {
    if (src.is_const) {
      answer.push_back(src.constant);
    } else {
      answer.push_back(db.tuple(ga.body[src.atom])[src.column]);
    }
  }
  return answer;
}

std::vector<TupleId> MonomialOf(const GroundAssignment& ga) {
  std::vector<TupleId> m = ga.body;
  std::sort(m.begin(), m.end());
  m.erase(std::unique(m.begin(), m.end()), m.end());
  return m;
}

}  // namespace

std::string Query::ToString() const {
  std::string out;
  for (const Rule& r : rules) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

StatusOr<Query> ParseQuery(std::string_view text) {
  StatusOr<std::vector<Rule>> rules = ParseQueryRules(text);
  if (!rules.ok()) return rules.status();
  Query query;
  query.head_name = rules.value().front().head.relation;
  query.arity = rules.value().front().head.terms.size();
  for (const Rule& r : rules.value()) {
    if (r.head.relation != query.head_name) {
      return Status::InvalidArgument(
          "query rules must share one head predicate: " + query.head_name +
          " vs " + r.head.relation);
    }
    if (r.head.terms.size() != query.arity) {
      return Status::InvalidArgument(StrFormat(
          "query head arity mismatch for %s: %zu vs %zu",
          query.head_name.c_str(), query.arity, r.head.terms.size()));
    }
  }
  query.rules = std::move(rules).value();
  return query;
}

Status ResolveQuery(Query* query, const Database& db) {
  for (Rule& rule : query->rules) {
    for (Atom& a : rule.body) {
      int idx = db.RelationIndex(a.relation);
      if (idx < 0) {
        return Status::NotFound("unknown relation in query: " + a.relation);
      }
      if (db.relation(static_cast<uint32_t>(idx)).arity() !=
          a.terms.size()) {
        return Status::InvalidArgument(StrFormat(
            "arity mismatch for %s: schema %zu vs atom %zu",
            a.relation.c_str(),
            db.relation(static_cast<uint32_t>(idx)).arity(),
            a.terms.size()));
      }
      a.relation_index = idx;
    }
  }
  return Status::OK();
}

std::map<Tuple, AnswerProvenance> GroundQuery(InstanceView* view,
                                              const Query& query,
                                              ExecContext* ctx) {
  std::map<Tuple, AnswerProvenance> answers;
  Grounder grounder(view);
  for (size_t i = 0; i < query.rules.size(); ++i) {
    if (ctx != nullptr && ctx->stopped()) break;
    const Rule& rule = query.rules[i];
    std::vector<HeadSource> plan = HeadPlan(rule);
    grounder.EnumerateRule(
        rule, static_cast<int>(i), BaseMatch::kLive, DeltaMatch::kCurrent,
        [&](const GroundAssignment& ga) {
          if (ctx != nullptr && ctx->Tick()) return false;
          answers[AnswerOf(plan, view->db(), ga)].monomials.push_back(
              MonomialOf(ga));
          return true;
        });
  }
  for (auto& [answer, prov] : answers) {
    std::sort(prov.monomials.begin(), prov.monomials.end());
    prov.monomials.erase(
        std::unique(prov.monomials.begin(), prov.monomials.end()),
        prov.monomials.end());
  }
  return answers;
}

std::vector<Tuple> EvalQuery(InstanceView* view, const Query& query) {
  std::map<Tuple, AnswerProvenance> grounded =
      GroundQuery(view, query, nullptr);
  std::vector<Tuple> out;
  out.reserve(grounded.size());
  for (auto& [answer, prov] : grounded) out.push_back(answer);
  return out;
}

}  // namespace deltarepair
