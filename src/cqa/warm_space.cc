#include "cqa/warm_space.h"

#include <algorithm>
#include <cmath>

namespace deltarepair {

WarmRepairSpace::WarmRepairSpace(IncrementalDeletionCnf* cnf,
                                 const WarmMinOnesResult& optimum,
                                 const MinOnesOptions& min_ones_options,
                                 int threads)
    : cnf_(cnf),
      min_ones_options_(min_ones_options),
      portfolio_threads_(threads) {
  // Without a proven warm optimum the space cannot be characterized —
  // same rule as the cold symbolic space.
  exact_ = optimum.satisfiable && optimum.optimal &&
           cnf_->SolvedAtCurrentEpoch();
  repair_size_ = static_cast<uint32_t>(optimum.num_true);
}

bool WarmRepairSpace::DeathClause(const std::vector<TupleId>& monomial,
                                  std::vector<Lit>* out) {
  bool touched = false;
  for (const TupleId& t : monomial) {
    int64_t v = cnf_->FindVar(t);
    if (v >= 0) {
      out->push_back(PosLit(static_cast<uint32_t>(v)));
      touched = true;
    }
  }
  return touched;
}

SolveStatus WarmRepairSpace::SolveUnder(ExecContext* ctx,
                                        const std::vector<Lit>& assumptions) {
  CdclSolver* solver = cnf_->solver();
  SolverOptions* opts = solver->mutable_options();
  double remaining = ctx->RemainingSeconds();
  opts->time_limit_seconds =
      std::isinf(remaining) ? 0 : std::max(remaining, 1e-9);
  opts->cancel =
      ctx->cancel_token() != nullptr ? ctx->cancel_token()->flag() : nullptr;
  return portfolio_threads_ > 1
             ? solver->SolvePortfolio(portfolio_threads_, assumptions)
             : solver->Solve(assumptions);
}

CqaVerdict WarmRepairSpace::Certain(const AnswerProvenance& prov,
                                    ExecContext* ctx) {
  if (!exact_) return {false, false};
  if (ctx->ShouldStop()) return {false, false};
  // ¬φ: every monomial loses a tuple, checked against the minimum
  // repairs selected by the entailment assumptions. A monomial with no
  // deletion variable at all makes the answer certain outright.
  std::vector<std::vector<Lit>> clauses;
  clauses.reserve(prov.monomials.size());
  for (const std::vector<TupleId>& m : prov.monomials) {
    std::vector<Lit> clause;
    if (!DeathClause(m, &clause)) return {true, true};
    clauses.push_back(std::move(clause));
  }
  CdclSolver* solver = cnf_->solver();
  const Lit selector = PosLit(solver->NewVar());
  for (std::vector<Lit>& clause : clauses) {
    clause.push_back(-selector);
    solver->AddClause(std::move(clause));
  }
  std::vector<Lit> assumptions = cnf_->entail_assumptions();
  assumptions.push_back(selector);
  SolveStatus status = SolveUnder(ctx, assumptions);
  solver->AddClause({-selector});  // retire
  if (status == SolveStatus::kUnknown) {
    ctx->ShouldStop();  // latch the budget/cancel reason
    return {false, false};
  }
  return {status == SolveStatus::kUnsat, true};
}

CqaVerdict WarmRepairSpace::Possible(const AnswerProvenance& prov,
                                     ExecContext* ctx) {
  if (!exact_) return {true, false};
  if (ctx->ShouldStop()) return {true, false};
  // φ: some monomial fully survives — Tseitin monomial variables under
  // a retired selector, mirroring the cold space.
  for (const std::vector<TupleId>& m : prov.monomials) {
    std::vector<Lit> death;
    if (!DeathClause(m, &death)) return {true, true};
  }
  CdclSolver* solver = cnf_->solver();
  const Lit selector = PosLit(solver->NewVar());
  std::vector<Lit> some_monomial{-selector};
  for (const std::vector<TupleId>& m : prov.monomials) {
    const Lit mono = PosLit(solver->NewVar());
    some_monomial.push_back(mono);
    for (const TupleId& t : m) {
      int64_t v = cnf_->FindVar(t);
      if (v >= 0) {
        solver->AddClause({-mono, NegLit(static_cast<uint32_t>(v))});
      }
    }
  }
  solver->AddClause(std::move(some_monomial));
  std::vector<Lit> assumptions = cnf_->entail_assumptions();
  assumptions.push_back(selector);
  SolveStatus status = SolveUnder(ctx, assumptions);
  solver->AddClause({-selector});  // retire
  if (status == SolveStatus::kUnknown) {
    ctx->ShouldStop();
    return {true, false};
  }
  return {status == SolveStatus::kSat, true};
}

void WarmRepairSpace::EnsureScratch() {
  if (extracted_) return;
  scratch_cnf_ = cnf_->ExtractActiveCnf(&scratch_tuples_);
  scratch_var_.reserve(scratch_tuples_.size());
  for (uint32_t i = 0; i < scratch_tuples_.size(); ++i) {
    scratch_var_[scratch_tuples_[i].Pack()] = i;
  }
  extracted_ = true;
}

std::optional<CqaCounterexample> WarmRepairSpace::Counterexample(
    const AnswerProvenance& prov, ExecContext* ctx) {
  if (!exact_) return std::nullopt;
  // Min-Ones over stability ∧ ¬φ on a dense snapshot of the active
  // clauses — the smallest stabilizing set killing the answer, exactly
  // the cold space's counterexample query.
  EnsureScratch();
  Cnf cnf = scratch_cnf_;
  for (const std::vector<TupleId>& m : prov.monomials) {
    std::vector<Lit> clause;
    bool touched = false;
    for (const TupleId& t : m) {
      auto it = scratch_var_.find(t.Pack());
      if (it != scratch_var_.end()) {
        clause.push_back(PosLit(it->second));
        touched = true;
      }
    }
    if (!touched) return std::nullopt;  // unkillable
    cnf.AddClause(std::move(clause));
  }
  MinOnesOptions options = min_ones_options_;
  options.time_limit_seconds =
      std::min(options.time_limit_seconds, ctx->RemainingSeconds());
  if (ctx->cancel_token() != nullptr) {
    options.cancel = ctx->cancel_token()->flag();
  }
  MinOnesResult solved = MinOnesSat(cnf, options);
  stats_.AddSolver(solved.solver);
  if (!solved.satisfiable) {
    ctx->ShouldStop();
    return std::nullopt;  // proven certain, or budget before any model
  }
  CqaCounterexample cex;
  for (uint32_t v = 0; v < scratch_tuples_.size(); ++v) {
    if (v < solved.model.size() && solved.model[v]) {
      cex.deleted.push_back(scratch_tuples_[v]);
    }
  }
  std::sort(cex.deleted.begin(), cex.deleted.end());
  cex.minimal = solved.optimal;
  return cex;
}

}  // namespace deltarepair
