#include "cqa/warm_space.h"

#include <algorithm>
#include <cmath>

#include "cqa/entailment.h"

namespace deltarepair {

// Per-worker judge over the warm space: sliced verdicts on the engine's
// long-lived ConeSlicer, full-CNF fallbacks on the borrowed solver.
// Mirrors the cold SymbolicJudge; declared at namespace scope for the
// friend grant.
class WarmJudge : public AnswerJudge {
 public:
  explicit WarmJudge(WarmRepairSpace* space)
      : space_(space),
        sliced_(space->slice_ != nullptr ? space->slice_->slicer.get()
                                         : nullptr,
                space->slice_options_, space->min_ones_options_) {}

  ~WarmJudge() override {
    std::lock_guard<std::mutex> lock(space_->stats_mu_);
    space_->slice_stats_.Add(sliced_.slice_stats());
    space_->stats_.Add(sliced_.repair_stats());
  }

  CqaVerdict Certain(const AnswerProvenance& prov,
                     ExecContext* ctx) override {
    if (!space_->exact()) return {false, false};
    if (sliced_.enabled()) {
      std::optional<CqaVerdict> verdict = sliced_.Certain(Reduce(prov), ctx);
      if (verdict.has_value()) return *verdict;
    }
    return space_->FallbackCertain(prov, ctx);
  }

  CqaVerdict Possible(const AnswerProvenance& prov,
                      ExecContext* ctx) override {
    if (!space_->exact()) return {true, false};
    if (sliced_.enabled()) {
      std::optional<CqaVerdict> verdict = sliced_.Possible(Reduce(prov), ctx);
      if (verdict.has_value()) return *verdict;
    }
    return space_->FallbackPossible(prov, ctx);
  }

  std::optional<CqaCounterexample> Counterexample(
      const AnswerProvenance& prov, ExecContext* ctx) override {
    if (!space_->exact()) return std::nullopt;
    if (sliced_.enabled()) {
      SlicedJudge::CexOutcome out = sliced_.Counterexample(Reduce(prov), ctx);
      if (out.kind == SlicedJudge::CexOutcome::Kind::kNone) {
        return std::nullopt;
      }
      if (out.kind == SlicedJudge::CexOutcome::Kind::kFound) {
        CqaCounterexample cex;
        cex.deleted.reserve(out.deleted_vars.size());
        for (uint32_t v : out.deleted_vars) {
          cex.deleted.push_back(space_->slice_->tuples[v]);
        }
        std::sort(cex.deleted.begin(), cex.deleted.end());
        cex.minimal = out.minimal;
        return cex;
      }
    }
    return space_->FallbackCounterexample(prov, ctx);
  }

 private:
  ConeSlicer::ReducedAnswer Reduce(const AnswerProvenance& prov) const {
    const WarmSliceState* slice = space_->slice_;
    return slice->slicer->Reduce(
        prov.monomials, [slice](TupleId t) -> int64_t {
          auto it = slice->var_of.find(t.Pack());
          return it == slice->var_of.end()
                     ? -1
                     : static_cast<int64_t>(it->second);
        });
  }

  WarmRepairSpace* space_;
  SlicedJudge sliced_;
};

WarmRepairSpace::WarmRepairSpace(IncrementalDeletionCnf* cnf,
                                 const WarmMinOnesResult& optimum,
                                 const MinOnesOptions& min_ones_options,
                                 WarmSliceProvider slice_provider,
                                 const SliceOptions& slice_options)
    : cnf_(cnf),
      min_ones_options_(min_ones_options),
      slice_provider_(std::move(slice_provider)),
      slice_options_(slice_options) {
  // Without a proven warm optimum the space cannot be characterized —
  // same rule as the cold symbolic space.
  exact_ = optimum.satisfiable && optimum.optimal &&
           cnf_->SolvedAtCurrentEpoch();
  repair_size_ = static_cast<uint32_t>(optimum.num_true);
}

void WarmRepairSpace::PrepareJudges(size_t num_answers) {
  if (slice_provider_ == nullptr || !slice_options_.enable ||
      num_answers < slice_options_.warm_min_answers) {
    return;
  }
  slice_ = slice_provider_();
}

CqaVerdict WarmRepairSpace::Certain(const AnswerProvenance& prov,
                                    ExecContext* ctx) {
  WarmJudge judge(this);
  return judge.Certain(prov, ctx);
}

CqaVerdict WarmRepairSpace::Possible(const AnswerProvenance& prov,
                                     ExecContext* ctx) {
  WarmJudge judge(this);
  return judge.Possible(prov, ctx);
}

std::optional<CqaCounterexample> WarmRepairSpace::Counterexample(
    const AnswerProvenance& prov, ExecContext* ctx) {
  WarmJudge judge(this);
  return judge.Counterexample(prov, ctx);
}

std::unique_ptr<AnswerJudge> WarmRepairSpace::NewJudge() {
  return std::make_unique<WarmJudge>(this);
}

void WarmRepairSpace::AddSliceStats(SliceStats* stats) const {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats->Add(slice_stats_);
  }
  if (slice_ != nullptr && slice_->slicer != nullptr) {
    stats->Add(slice_->slicer->stats());
    stats->cone_seconds += slice_->extract_seconds;
  }
  stats->scrub_runs += cnf_->scrub_runs();
  stats->clauses_reclaimed += cnf_->clauses_reclaimed();
}

bool WarmRepairSpace::DeathClause(const std::vector<TupleId>& monomial,
                                  std::vector<Lit>* out) {
  bool touched = false;
  for (const TupleId& t : monomial) {
    int64_t v = cnf_->FindVar(t);
    if (v >= 0) {
      out->push_back(PosLit(static_cast<uint32_t>(v)));
      touched = true;
    }
  }
  return touched;
}

SolveStatus WarmRepairSpace::SolveUnder(ExecContext* ctx,
                                        const std::vector<Lit>& assumptions) {
  CdclSolver* solver = cnf_->solver();
  SolverOptions* opts = solver->mutable_options();
  double remaining = ctx->RemainingSeconds();
  opts->time_limit_seconds =
      std::isinf(remaining) ? 0 : std::max(remaining, 1e-9);
  opts->cancel =
      ctx->cancel_token() != nullptr ? ctx->cancel_token()->flag() : nullptr;
  return solver->Solve(assumptions);
}

CqaVerdict WarmRepairSpace::FallbackCertain(const AnswerProvenance& prov,
                                            ExecContext* ctx) {
  if (ctx->ShouldStop()) return {false, false};
  // ¬φ: every monomial loses a tuple, checked against the minimum
  // repairs selected by the entailment assumptions. A monomial with no
  // deletion variable at all makes the answer certain outright.
  std::vector<std::vector<Lit>> clauses;
  clauses.reserve(prov.monomials.size());
  for (const std::vector<TupleId>& m : prov.monomials) {
    std::vector<Lit> clause;
    if (!DeathClause(m, &clause)) return {true, true};
    clauses.push_back(std::move(clause));
  }
  std::lock_guard<std::mutex> lock(fallback_mu_);
  CdclSolver* solver = cnf_->solver();
  const Lit selector = PosLit(solver->NewVar());
  for (std::vector<Lit>& clause : clauses) {
    clause.push_back(-selector);
    solver->AddClause(std::move(clause));
  }
  std::vector<Lit> assumptions = cnf_->entail_assumptions();
  assumptions.push_back(selector);
  SolveStatus status = SolveUnder(ctx, assumptions);
  solver->AddClause({-selector});  // retire
  if (status == SolveStatus::kUnknown) {
    ctx->ShouldStop();  // latch the budget/cancel reason
    return {false, false};
  }
  return {status == SolveStatus::kUnsat, true};
}

CqaVerdict WarmRepairSpace::FallbackPossible(const AnswerProvenance& prov,
                                             ExecContext* ctx) {
  if (ctx->ShouldStop()) return {true, false};
  // φ: some monomial fully survives — Tseitin monomial variables under
  // a retired selector, mirroring the cold space.
  for (const std::vector<TupleId>& m : prov.monomials) {
    std::vector<Lit> death;
    if (!DeathClause(m, &death)) return {true, true};
  }
  std::lock_guard<std::mutex> lock(fallback_mu_);
  CdclSolver* solver = cnf_->solver();
  const Lit selector = PosLit(solver->NewVar());
  std::vector<Lit> some_monomial{-selector};
  for (const std::vector<TupleId>& m : prov.monomials) {
    const Lit mono = PosLit(solver->NewVar());
    some_monomial.push_back(mono);
    for (const TupleId& t : m) {
      int64_t v = cnf_->FindVar(t);
      if (v >= 0) {
        solver->AddClause({-mono, NegLit(static_cast<uint32_t>(v))});
      }
    }
  }
  solver->AddClause(std::move(some_monomial));
  std::vector<Lit> assumptions = cnf_->entail_assumptions();
  assumptions.push_back(selector);
  SolveStatus status = SolveUnder(ctx, assumptions);
  solver->AddClause({-selector});  // retire
  if (status == SolveStatus::kUnknown) {
    ctx->ShouldStop();
    return {true, false};
  }
  return {status == SolveStatus::kSat, true};
}

void WarmRepairSpace::EnsureScratch() {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  if (extracted_) return;
  scratch_cnf_ = cnf_->ExtractActiveCnf(&scratch_tuples_);
  scratch_var_.reserve(scratch_tuples_.size());
  for (uint32_t i = 0; i < scratch_tuples_.size(); ++i) {
    scratch_var_[scratch_tuples_[i].Pack()] = i;
  }
  extracted_ = true;
}

std::optional<CqaCounterexample> WarmRepairSpace::FallbackCounterexample(
    const AnswerProvenance& prov, ExecContext* ctx) {
  // Min-Ones over stability ∧ ¬φ on a dense snapshot of the active
  // clauses — the smallest stabilizing set killing the answer, exactly
  // the cold space's counterexample query. The slice state, when
  // present, *is* that snapshot; otherwise extract one lazily.
  const Cnf* base = nullptr;
  const std::vector<TupleId>* tuples = nullptr;
  const std::unordered_map<uint64_t, uint32_t>* var_of = nullptr;
  if (slice_ != nullptr) {
    base = &slice_->cnf;
    tuples = &slice_->tuples;
    var_of = &slice_->var_of;
  } else {
    EnsureScratch();
    base = &scratch_cnf_;
    tuples = &scratch_tuples_;
    var_of = &scratch_var_;
  }
  Cnf cnf = *base;
  for (const std::vector<TupleId>& m : prov.monomials) {
    std::vector<Lit> clause;
    bool touched = false;
    for (const TupleId& t : m) {
      auto it = var_of->find(t.Pack());
      if (it != var_of->end()) {
        clause.push_back(PosLit(it->second));
        touched = true;
      }
    }
    if (!touched) return std::nullopt;  // unkillable
    cnf.AddClause(std::move(clause));
  }
  MinOnesOptions options = min_ones_options_;
  options.time_limit_seconds =
      std::min(options.time_limit_seconds, ctx->RemainingSeconds());
  if (ctx->cancel_token() != nullptr) {
    options.cancel = ctx->cancel_token()->flag();
  }
  MinOnesResult solved = MinOnesSat(cnf, options);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.AddSolver(solved.solver);
  }
  if (!solved.satisfiable) {
    ctx->ShouldStop();
    return std::nullopt;  // proven certain, or budget before any model
  }
  CqaCounterexample cex;
  for (uint32_t v = 0; v < tuples->size(); ++v) {
    if (v < solved.model.size() && solved.model[v]) {
      cex.deleted.push_back((*tuples)[v]);
    }
  }
  std::sort(cex.deleted.begin(), cex.deleted.end());
  cex.minimal = solved.optimal;
  return cex;
}

}  // namespace deltarepair
