// WarmRepairSpace: the symbolic independent repair space served from
// warm incremental state instead of a per-request rebuild.
//
// SymbolicRepairSpace re-grounds the hypothetical program, re-normalizes
// the stability CNF, re-runs Min-Ones and loads a fresh entailment
// solver on every CQA request. The warm space skips all four: it borrows
// the engine's long-lived IncrementalDeletionCnf — whose solver already
// holds the guarded stability clauses, cached per-component totalizer
// caps and learned clauses from earlier requests — and answers
// Certain/Possible with the same per-answer assumption solves as the
// cold space, adding entail_assumptions() (active rule selectors +
// component caps + pinned unconstrained vars) under each query selector.
// Counterexamples run Min-Ones over a dense snapshot of the active
// clauses (extracted lazily, once per space).
//
// Lifetime contract: the space borrows the long-lived solver, so exactly
// one WarmRepairSpace may be live at a time and its owner must hold the
// engine lock for the space's whole lifetime (IncrementalEngine does).
#ifndef DELTAREPAIR_CQA_WARM_SPACE_H_
#define DELTAREPAIR_CQA_WARM_SPACE_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "cqa/repair_space.h"
#include "provenance/incremental_cnf.h"

namespace deltarepair {

class WarmRepairSpace : public RepairSpace {
 public:
  /// `cnf` must have run SolveMinOnes at its current epoch; `optimum` is
  /// that solve's result. The space is inexact (all verdicts undecided)
  /// when the warm optimum is unsatisfiable or unproven.
  WarmRepairSpace(IncrementalDeletionCnf* cnf,
                  const WarmMinOnesResult& optimum,
                  const MinOnesOptions& min_ones_options, int threads);

  CqaVerdict Certain(const AnswerProvenance& prov,
                     ExecContext* ctx) override;
  CqaVerdict Possible(const AnswerProvenance& prov,
                      ExecContext* ctx) override;
  std::optional<CqaCounterexample> Counterexample(
      const AnswerProvenance& prov, ExecContext* ctx) override;

  // AddStats inherits the default (scratch counters only): the borrowed
  // solver's counters are cumulative across the engine's lifetime and
  // would multi-count if folded into every request; the engine reports
  // them once through its own stats instead.

 private:
  /// Positive deletion literals of the monomial's tuples that have a
  /// deletion variable. False when none has one (the answer then
  /// survives every repair outright). Variables pinned false by the
  /// entailment assumptions may appear — their literals are simply dead
  /// under those assumptions, which is exactly the intended semantics.
  bool DeathClause(const std::vector<TupleId>& monomial,
                   std::vector<Lit>* out);
  SolveStatus SolveUnder(ExecContext* ctx,
                         const std::vector<Lit>& assumptions);
  void EnsureScratch();

  IncrementalDeletionCnf* cnf_;
  MinOnesOptions min_ones_options_;
  int portfolio_threads_ = 1;

  // Lazily extracted dense snapshot for counterexample Min-Ones runs.
  bool extracted_ = false;
  Cnf scratch_cnf_;
  std::vector<TupleId> scratch_tuples_;                 // dense var -> tuple
  std::unordered_map<uint64_t, uint32_t> scratch_var_;  // packed -> dense
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_CQA_WARM_SPACE_H_
