// WarmRepairSpace: the symbolic independent repair space served from
// warm incremental state instead of a per-request rebuild.
//
// SymbolicRepairSpace re-grounds the hypothetical program, re-normalizes
// the stability CNF, re-runs Min-Ones and re-slices the cone
// decomposition on every CQA request. The warm space skips all of it: it
// borrows the engine's long-lived IncrementalDeletionCnf and, for large
// enough requests, a WarmSliceState the engine refreshes lazily per CNF
// epoch — a dense extraction of the active stability clauses plus a
// ConeSlicer over it.
// Per-answer verdicts run through SlicedJudge on the answer's memoized
// cone slice (fresh throwaway solvers — thread-safe, deterministic); the
// pre-slicing machinery on the borrowed long-lived solver
// (entail_assumptions() + per-answer selector-retired clause groups)
// stays as the soundness fallback, serialized on an internal mutex.
// Counterexample fallbacks run Min-Ones over private copies of the dense
// snapshot and need no serialization.
//
// Lifetime contract: the space borrows the long-lived solver and the
// slice state, so exactly one WarmRepairSpace may be live at a time and
// its owner must hold the engine lock for the space's whole lifetime
// (IncrementalEngine does).
#ifndef DELTAREPAIR_CQA_WARM_SPACE_H_
#define DELTAREPAIR_CQA_WARM_SPACE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cqa/repair_space.h"
#include "provenance/cone.h"
#include "provenance/incremental_cnf.h"

namespace deltarepair {

/// Warm cone-slicing state, owned by the engine and rebuilt lazily when
/// the CNF epoch moves: a dense snapshot of the active stability
/// clauses and the minimum-repair cone decomposition over it. Dense var
/// i corresponds to tuples[i]; the slicer's variable space is exactly
/// this dense space.
struct WarmSliceState {
  std::unique_ptr<ConeSlicer> slicer;
  std::vector<TupleId> tuples;                    // dense var -> tuple
  std::unordered_map<uint64_t, uint32_t> var_of;  // packed id -> dense var
  Cnf cnf;                                        // dense active clauses
  /// IncrementalDeletionCnf::epoch() this state reflects.
  uint64_t epoch = UINT64_MAX;
  /// Dense-extraction time (the cone build itself is timed by the
  /// slicer's own stats).
  double extract_seconds = 0;
};

/// Returns the engine's slice state, current for the CNF's epoch
/// (rebuilding it if stale). Must stay valid for the space's lifetime.
using WarmSliceProvider = std::function<WarmSliceState*()>;

class WarmRepairSpace : public RepairSpace {
 public:
  /// `cnf` must have run SolveMinOnes at its current epoch; `optimum` is
  /// that solve's result. `slice_provider` (nullable — verdicts then
  /// always use the full-CNF fallback) is invoked at most once, from
  /// PrepareJudges, and only when the request grounds at least
  /// SliceOptions::warm_min_answers answers — refreshing the cone
  /// decomposition for a handful of answers costs more than the warm
  /// solver's direct assumption solves. The space is inexact (all
  /// verdicts undecided) when the warm optimum is unsatisfiable or
  /// unproven.
  WarmRepairSpace(IncrementalDeletionCnf* cnf,
                  const WarmMinOnesResult& optimum,
                  const MinOnesOptions& min_ones_options,
                  WarmSliceProvider slice_provider,
                  const SliceOptions& slice_options);

  /// Builds/refreshes the shared cone decomposition when this request
  /// is big enough to amortize it (see ctor comment).
  void PrepareJudges(size_t num_answers) override;

  /// Direct calls delegate to a temporary judge.
  CqaVerdict Certain(const AnswerProvenance& prov,
                     ExecContext* ctx) override;
  CqaVerdict Possible(const AnswerProvenance& prov,
                      ExecContext* ctx) override;
  std::optional<CqaCounterexample> Counterexample(
      const AnswerProvenance& prov, ExecContext* ctx) override;

  std::unique_ptr<AnswerJudge> NewJudge() override;

  // AddStats inherits the default (scratch counters only): the borrowed
  // solver's counters are cumulative across the engine's lifetime and
  // would multi-count if folded into every request; the engine reports
  // them once through its own stats instead.

  /// Slice-layer counters: this request's judge work, plus the warm
  /// build-side and scrub gauges (cumulative over the engine lifetime —
  /// the cone decomposition and solver compactions are amortized across
  /// requests, so per-request deltas would be misleading zeros).
  void AddSliceStats(SliceStats* stats) const override;

 private:
  friend class WarmJudge;

  /// Full-CNF verdicts on the borrowed long-lived solver
  /// (selector-retired clause groups under entail_assumptions());
  /// serialize internally on fallback_mu_.
  CqaVerdict FallbackCertain(const AnswerProvenance& prov, ExecContext* ctx);
  CqaVerdict FallbackPossible(const AnswerProvenance& prov, ExecContext* ctx);
  /// Full-CNF counterexample: Min-Ones over a private copy of the dense
  /// stability snapshot ∧ ¬φ — no shared solver, runs concurrently.
  std::optional<CqaCounterexample> FallbackCounterexample(
      const AnswerProvenance& prov, ExecContext* ctx);

  /// Positive deletion literals of the monomial's tuples that have a
  /// deletion variable. False when none has one (the answer then
  /// survives every repair outright). Variables pinned false by the
  /// entailment assumptions may appear — their literals are simply dead
  /// under those assumptions, which is exactly the intended semantics.
  bool DeathClause(const std::vector<TupleId>& monomial,
                   std::vector<Lit>* out);
  /// One assumption solve on the borrowed solver. Requires fallback_mu_.
  SolveStatus SolveUnder(ExecContext* ctx,
                         const std::vector<Lit>& assumptions);
  /// Dense snapshot for counterexample fallbacks when no slice state
  /// was provided (thread-safe lazy extraction).
  void EnsureScratch();

  IncrementalDeletionCnf* cnf_;
  MinOnesOptions min_ones_options_;
  WarmSliceProvider slice_provider_;
  WarmSliceState* slice_ = nullptr;  // set by PrepareJudges
  SliceOptions slice_options_;

  std::mutex fallback_mu_;  // serializes borrowed-solver use

  std::mutex scratch_mu_;  // guards the lazy extraction below
  bool extracted_ = false;
  Cnf scratch_cnf_;
  std::vector<TupleId> scratch_tuples_;                 // dense var -> tuple
  std::unordered_map<uint64_t, uint32_t> scratch_var_;  // packed -> dense

  mutable std::mutex stats_mu_;  // judges flush counters concurrently
  SliceStats slice_stats_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_CQA_WARM_SPACE_H_
