// Reproduces the Sec. 6 "Comparison with Triggers" experiment: MAS
// programs 3, 4, 5, 8 and 20 executed as SQL triggers under PostgreSQL
// (alphabetical) and MySQL (creation-order) firing disciplines, compared
// with the four delta-rule semantics. Trigger names are assigned
// reverse-alphabetically to rule order, so the two disciplines genuinely
// diverge where the paper observed divergence (programs 3, 4, 8).
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "repair/repair_engine.h"
#include "triggers/trigger.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

int Main() {
  MasData mas = BenchMas();
  PrintHeader("Triggers vs semantics: deletions (programs 3, 4, 5, 8, 20)");
  TablePrinter sizes({"Program", "PostgreSQL", "MySQL", "End", "Stage",
                      "Step", "Ind"});
  PrintHeader("Runtimes (collected in the same pass)");
  TablePrinter times({"Program", "PostgreSQL", "MySQL", "End", "Stage",
                      "Step", "Ind"});

  for (int num : {3, 4, 5, 8, 20}) {
    Program program = MasProgram(num, mas.hubs);
    // Reverse-alphabetical names: alphabetical firing = reverse creation.
    std::vector<std::string> names;
    for (size_t i = 0; i < program.size(); ++i) {
      names.push_back(StrFormat("t%02zu_%s", program.size() - i,
                                program.rules()[i].head.relation.c_str()));
    }

    TriggerRunResult pg, my;
    {
      Database db = mas.db;
      auto engine = TriggerEngine::Create(&db, program, names);
      if (!engine.ok()) continue;
      pg = engine->Run(TriggerOrder::kAlphabetical);
    }
    {
      Database db = mas.db;
      auto engine = TriggerEngine::Create(&db, program, names);
      if (!engine.ok()) continue;
      my = engine->Run(TriggerOrder::kCreationOrder);
    }

    Database db = mas.db;
    StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
    if (!engine.ok()) continue;
    std::vector<RepairOutcome> outcomes = engine->RunBatch(
        {RepairRequest{"end"}, RepairRequest{"stage"}, RepairRequest{"step"},
         RepairRequest{"independent"}});
    const RepairResult& end = outcomes[0].result;
    const RepairResult& stage = outcomes[1].result;
    const RepairResult& step = outcomes[2].result;
    const RepairResult& ind = outcomes[3].result;

    std::string name = std::to_string(num);
    sizes.AddRow({name, std::to_string(pg.size()), std::to_string(my.size()),
                  std::to_string(end.size()), std::to_string(stage.size()),
                  std::to_string(step.size()), std::to_string(ind.size())});
    times.AddRow({name, Ms(pg.seconds), Ms(my.seconds),
                  Ms(end.stats.total_seconds), Ms(stage.stats.total_seconds),
                  Ms(step.stats.total_seconds),
                  Ms(ind.stats.total_seconds)});
  }
  std::printf("\n-- deletions --\n");
  sizes.Print();
  std::printf("\n-- runtimes --\n");
  times.Print();
  std::printf(
      "\npaper shape: trigger results depend on firing order for programs "
      "3/4/8 (step semantics deletes fewer tuples than the bad order); for "
      "the pure cascades 5 and 20, triggers match the semantics.\n");
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
