// Reproduces Table 4: over-deletions (+) of each semantics versus
// HoloClean's under-repairs (−) on a 5000-row Author table with DC1-DC4,
// for an increasing number of injected errors. Our semantics treat the
// DCs as hard constraints and always fix every violation (over-deleting
// when the semantics forces it); the HoloClean-style baseline repairs
// cells and repairs fewer tuples than required.
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "holoclean/holoclean.h"
#include "repair/repair_engine.h"
#include "workload/error_injector.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

int Main() {
  const size_t rows =
      static_cast<size_t>(5000 * BenchScale());
  PrintHeader(StrFormat("Table 4: deletions vs HoloClean repairs (%zu rows)",
                        rows));
  TablePrinter table({"Errors", "Ind", "Step", "Stage", "End",
                      "HC repaired-errors", "HC restored-errors"});
  std::vector<DenialConstraint> dcs = AuthorDenialConstraints();
  Program dc_program = DcsToProgram(dcs, DcTranslation::kRulePerAtom);

  for (size_t base_errors : {100, 200, 300, 500, 700, 1000}) {
    const size_t errors = ScaledErrors(base_errors, rows);
    ErrorInjectorConfig config;
    config.num_rows = rows;
    config.num_errors = errors;
    InjectedTable injected = MakeInjectedAuthorTable(config);
    Database db = injected.MakeDb();
    StatusOr<RepairEngine> engine = RepairEngine::Create(&db, dc_program);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return 1;
    }
    auto signed_diff = [&](size_t deleted) {
      int64_t d = static_cast<int64_t>(deleted) -
                  static_cast<int64_t>(errors);
      return StrFormat("%+lld", static_cast<long long>(d));
    };
    std::vector<RepairOutcome> outcomes = engine->RunBatch(
        {RepairRequest{"independent"}, RepairRequest{"step"},
         RepairRequest{"stage"}, RepairRequest{"end"}});
    const RepairResult& ind = outcomes[0].result;
    const RepairResult& step = outcomes[1].result;
    const RepairResult& stage = outcomes[2].result;
    const RepairResult& end = outcomes[3].result;

    HoloCleanReport hc = RunHoloClean(&db, "Author", dcs);
    int64_t hc_diff = static_cast<int64_t>(hc.repaired_rows) -
                      static_cast<int64_t>(errors);
    // The paper's under-repair number: cells actually fixed (ground
    // truth restored) minus required repairs.
    size_t restored = 0;
    for (const InjectedCell& e : injected.errors) {
      if (hc.rows[e.row][e.column] == e.clean_value) ++restored;
    }
    int64_t restored_diff =
        static_cast<int64_t>(restored) - static_cast<int64_t>(errors);

    table.AddRow({std::to_string(errors), signed_diff(ind.size()),
                  signed_diff(step.size()), signed_diff(stage.size()),
                  signed_diff(end.size()),
                  StrFormat("%+lld", static_cast<long long>(hc_diff)),
                  StrFormat("%+lld", static_cast<long long>(restored_diff))});
  }
  table.Print();
  std::printf(
      "\npaper shape: Ind ~ +0; Step slightly above; Stage/End over-delete "
      "(both sides of every violation); HoloClean under-repairs — the "
      "restored-errors column is negative and increasingly so with more "
      "errors (our baseline also touches clean cells, so its raw repair "
      "count can exceed the error count; see EXPERIMENTS.md).\n");
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
