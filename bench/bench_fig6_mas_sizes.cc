// Reproduces Figure 6: result sizes of the four semantics on the MAS
// programs of Table 1 — (a) programs 1-10 (4 and 10 reported separately,
// as in the paper), (b) programs 11-15 (single rule, growing join chain),
// (c) programs 16-20 (growing cascade chain; all semantics equal).
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "repair/repair_engine.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

void RunGroup(const MasData& mas, const std::vector<int>& programs,
              const std::string& title, BenchReporter* reporter) {
  PrintHeader(title);
  TablePrinter table({"Program", "End", "Stage", "Step", "Independent"});
  for (int num : programs) {
    Database db = mas.db;
    StatusOr<RepairEngine> engine =
        RepairEngine::Create(&db, MasProgram(num, mas.hubs));
    if (!engine.ok()) continue;
    std::vector<RepairOutcome> outcomes = engine->RunBatch(
        {RepairRequest{"end"}, RepairRequest{"stage"}, RepairRequest{"step"},
         RepairRequest{"independent"}});
    const RepairResult& end = outcomes[0].result;
    const RepairResult& stage = outcomes[1].result;
    const RepairResult& step = outcomes[2].result;
    const RepairResult& ind = outcomes[3].result;
    reporter->AddRow("program_" + std::to_string(num))
        .Metric("end_size", static_cast<int64_t>(end.size()))
        .Metric("stage_size", static_cast<int64_t>(stage.size()))
        .Metric("step_size", static_cast<int64_t>(step.size()))
        .Metric("independent_size", static_cast<int64_t>(ind.size()));
    table.AddRow({std::to_string(num), std::to_string(end.size()),
                  std::to_string(stage.size()), std::to_string(step.size()),
                  std::to_string(ind.size())});
  }
  table.Print();
}

int Main() {
  MasData mas = BenchMas();
  BenchReporter reporter("bench_fig6_mas_sizes");
  std::printf("MAS instance: %s tuples (DR_SCALE=%.2f)\n",
              WithThousands(static_cast<int64_t>(mas.db.TotalLive())).c_str(),
              BenchScale());
  // The paper charts 1-10 without 4 and 10 (scale outliers), reporting
  // them in text; we list them in their own section instead.
  RunGroup(mas, {1, 2, 3, 5, 6, 7, 8, 9},
           "Figure 6a: result sizes, programs 1-10 (4, 10 below)", &reporter);
  RunGroup(mas, {4, 10}, "Figure 6a (text): programs 4 and 10", &reporter);
  RunGroup(mas, {11, 12, 13, 14, 15},
           "Figure 6b: result sizes, programs 11-15", &reporter);
  RunGroup(mas, {16, 17, 18, 19, 20},
           "Figure 6c: result sizes, programs 16-20", &reporter);
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
