// Incremental serving benchmark: steady-state latency of the warm
// delta-aware engine (service/incremental_engine.h) vs cold per-request
// re-ground + re-encode + re-solve, under a sustained stream of small
// updates interleaved with repair and CQA requests over MAS program 15
// (the paper's widest join: a 5-way rule whose only deletable relation
// is Cite, so the CNF decomposes into per-tuple components). Expected
// shape: after warmup the warm engine serves each request several times
// (>= 3x at DR_SCALE=1) faster than the cold path — a patch re-grounds
// only the join bindings pivoted on the delta, the Min-Ones pass
// re-solves only the touched components, and CQA re-validates only the
// answers whose provenance cone intersects the delta, where cold
// re-runs the full join per request.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "cqa/cqa.h"
#include "repair/repair_engine.h"
#include "service/incremental_engine.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

// Steady state begins once the update stream has cycled its whole
// working set (every component content key and verdict signature seen
// once); everything before that is warmup.
constexpr int kWarmupSteps = 10;
constexpr int kSteps = 16;

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs.empty() ? 0 : xs[xs.size() / 2];
}

struct Lane {
  std::vector<double> warm, cold;
};

int Main() {
  MasData mas = BenchMas();
  Program program = MasProgram(15, mas.hubs);
  PrintHeader("Incremental serving: warm delta-aware vs cold re-ground");
  std::printf("MAS instance: %zu relations, %zu tuples, program 15\n",
              mas.db.num_relations(), mas.db.TotalLive());
  BenchReporter reporter("bench_incremental");

  // An aggressive scrub threshold so the update stream actually
  // triggers long-lived-solver compaction passes: the steady-state
  // speedup bar below is measured *with* scrub churn, not around it.
  IncrementalEngineOptions warm_options;
  warm_options.selector_gc_threshold = 16;
  StatusOr<std::unique_ptr<IncrementalEngine>> warm_or =
      IncrementalEngine::Create(&mas.db, program, warm_options);
  if (!warm_or.ok()) {
    std::fprintf(stderr, "warm engine: %s\n",
                 warm_or.status().ToString().c_str());
    return 1;
  }
  IncrementalEngine* warm = warm_or->get();
  StatusOr<RepairEngine> cold_or = RepairEngine::Create(&mas.db, program);
  if (!cold_or.ok()) {
    std::fprintf(stderr, "cold engine: %s\n",
                 cold_or.status().ToString().c_str());
    return 1;
  }
  RepairEngine cold = std::move(cold_or).value();

  // The update stream cycles delete/reinsert over a small working set
  // of Cite tuples — the rows program 15's rule fires on — half of them
  // citations of the hub publication (inside the CQA answer's
  // provenance cone), half elsewhere. The instance stays in steady
  // state: every step realizes a non-empty delta, and the stream
  // revisits earlier instance states, which is exactly what the
  // content-keyed component and verdict caches are for.
  uint32_t cite =
      static_cast<uint32_t>(mas.db.RelationIndex(kMasCite));
  std::vector<Tuple> cycle, hub_cites, other_cites;
  for (const TupleId& id : mas.db.base_view().LiveTupleIds()) {
    if (id.relation != cite) continue;
    const Tuple& t = mas.db.tuple(id);
    if (t[1] == Value(mas.hubs.hub_pub_pid)) {
      if (hub_cites.size() < 2) hub_cites.push_back(t);
    } else if (other_cites.size() < 2) {
      other_cites.push_back(t);
    }
  }
  cycle.insert(cycle.end(), hub_cites.begin(), hub_cites.end());
  cycle.insert(cycle.end(), other_cites.begin(), other_cites.end());
  if (cycle.size() < 2) {
    std::fprintf(stderr, "not enough Cite tuples to cycle\n");
    return 1;
  }

  RepairRequest repair_ind, repair_end;
  repair_ind.semantics = "independent";
  repair_end.semantics = "end";
  // One answer (the hub publication) with one monomial per citation of
  // it — a provenance cone the cycled hub citations intersect.
  CqaRequest cqa("independent",
                 StrFormat("Q(t) :- Publication(p, t), Cite(c, p), "
                           "p = %lld.",
                           static_cast<long long>(mas.hubs.hub_pub_pid)));

  // Two passes over the same update stream, warm first, then cold.
  // Interleaving the competitors would let each cold request (a full
  // re-ground, tens of MB of short-lived state) evict the caches the
  // next warm measurement depends on; separate passes time each engine
  // under its own steady state. The stream is state-periodic — step s
  // leaves the instance at baseline minus at most one cycle tuple, a
  // function of s alone — and every delete is paired with a reinsert,
  // so the cold pass replays the exact instance states of the warm pass
  // and the per-step outcomes must match: the bench doubles as an
  // end-to-end differential check.
  const int total_steps = kWarmupSteps + kSteps;
  auto apply_step = [&](int step) -> bool {
    const Tuple& t = cycle[static_cast<size_t>(step / 2) % cycle.size()];
    Delta delta = mas.db.ApplyUpdate(cite, /*is_insert=*/step % 2 != 0,
                                     {t});
    if (delta.empty()) {
      std::fprintf(stderr, "update step %d realized nothing\n", step);
      return false;
    }
    return true;
  };

  struct StepOutcome {
    RepairOutcome ind, end;
    CqaResult cqa;
  };
  std::vector<StepOutcome> warm_outcomes(total_steps);

  Lane ind_lane, end_lane, cqa_lane;
  for (int step = 0; step < total_steps; ++step) {
    if (!apply_step(step)) return 1;
    WallTimer wt;
    warm_outcomes[step].ind = warm->ExecuteRepair(repair_ind);
    double warm_ind = wt.ElapsedSeconds();
    wt = WallTimer();
    warm_outcomes[step].end = warm->ExecuteRepair(repair_end);
    double warm_end = wt.ElapsedSeconds();
    wt = WallTimer();
    warm_outcomes[step].cqa = warm->ExecuteCqa(cqa);
    double warm_cqa = wt.ElapsedSeconds();
    if (step >= kWarmupSteps) {
      ind_lane.warm.push_back(warm_ind);
      end_lane.warm.push_back(warm_end);
      cqa_lane.warm.push_back(warm_cqa);
    }
  }

  for (int step = 0; step < total_steps; ++step) {
    if (!apply_step(step)) return 1;
    WallTimer wt;
    RepairOutcome ci = cold.ExecuteOnSnapshot(repair_ind);
    double cold_ind = wt.ElapsedSeconds();
    wt = WallTimer();
    RepairOutcome ce = cold.ExecuteOnSnapshot(repair_end);
    double cold_end = wt.ElapsedSeconds();
    wt = WallTimer();
    CqaResult cq = AnswerQueryOnSnapshot(&cold, cqa);
    double cold_cqa = wt.ElapsedSeconds();

    const StepOutcome& w = warm_outcomes[step];
    if (!w.ind.ok() || !ci.ok() ||
        w.ind.result.size() != ci.result.size() ||
        !w.end.ok() || !ce.ok() || !w.end.result.SameSet(ce.result) ||
        !w.cqa.ok() || !cq.ok() ||
        w.cqa.CertainAnswers() != cq.CertainAnswers() ||
        w.cqa.PossibleAnswers() != cq.PossibleAnswers()) {
      std::fprintf(stderr, "warm/cold divergence at step %d\n", step);
      return 1;
    }

    if (step >= kWarmupSteps) {
      ind_lane.cold.push_back(cold_ind);
      end_lane.cold.push_back(cold_end);
      cqa_lane.cold.push_back(cold_cqa);
    }
  }

  TablePrinter table({"request", "warm", "cold", "speedup"});
  auto report = [&](const std::string& name, const Lane& lane) {
    double warm_s = Median(lane.warm);
    double cold_s = Median(lane.cold);
    // Per-step ratios: both sides of a ratio measured the same cycle
    // position (identical instance state), so the median ratio is
    // steadier than a ratio of medians.
    std::vector<double> ratios;
    for (size_t i = 0; i < lane.warm.size(); ++i) {
      if (lane.warm[i] > 0) ratios.push_back(lane.cold[i] / lane.warm[i]);
    }
    double speedup = Median(ratios);
    table.AddRow({name, Ms(warm_s), Ms(cold_s),
                  StrFormat("%.1fx", speedup)});
    reporter.AddRow(name)
        .Metric("warm_seconds", warm_s)
        .Metric("cold_seconds", cold_s)
        .Metric("speedup", speedup);
    return speedup;
  };
  double ind_speedup = report("repair_independent", ind_lane);
  report("repair_end", end_lane);
  report("cqa_independent", cqa_lane);
  table.Print();

  IncrementalEngine::Stats stats = warm->stats();
  std::printf("warm engine: %llu syncs (%llu incremental, %llu cold"
              " rebuilds, %llu empty patches), %llu/%llu min-ones"
              " components reused, %llu/%llu verdict cache hits\n",
              static_cast<unsigned long long>(stats.syncs),
              static_cast<unsigned long long>(stats.incremental_syncs),
              static_cast<unsigned long long>(stats.cold_rebuilds),
              static_cast<unsigned long long>(stats.empty_patches),
              static_cast<unsigned long long>(
                  stats.minones_components_reused),
              static_cast<unsigned long long>(
                  stats.minones_components_reused +
                  stats.minones_components_solved),
              static_cast<unsigned long long>(stats.verdict_cache_hits),
              static_cast<unsigned long long>(stats.verdict_cache_hits +
                                              stats.verdict_cache_misses));
  reporter.AddRow("warm_engine_counters")
      .Metric("incremental_syncs",
              static_cast<int64_t>(stats.incremental_syncs))
      .Metric("cold_rebuilds", static_cast<int64_t>(stats.cold_rebuilds))
      .Metric("minones_components_reused",
              static_cast<int64_t>(stats.minones_components_reused))
      .Metric("verdict_cache_hits",
              static_cast<int64_t>(stats.verdict_cache_hits))
      .Metric("scrub_runs", static_cast<int64_t>(stats.scrub_runs))
      .Metric("clauses_reclaimed",
              static_cast<int64_t>(stats.clauses_reclaimed))
      .Metric("vars_reclaimed",
              static_cast<int64_t>(stats.vars_reclaimed));

  if (BenchScale() >= 1.0 && ind_speedup < 3.0) {
    std::fprintf(stderr,
                 "steady-state independent repair speedup %.1fx is below "
                 "the 3x acceptance bar at DR_SCALE>=1\n",
                 ind_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
