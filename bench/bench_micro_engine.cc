// Microbenchmarks (google-benchmark) of the engine substrates plus the
// ablations called out in DESIGN.md: join grounding, hypothetical
// grounding, the semi-naive fixpoint in both modes, provenance-graph
// construction, Algorithm 2's traversal, and Min-Ones scaling on
// vertex-cover instances.
#include <benchmark/benchmark.h>

#include <type_traits>
#include <utility>

#include "bench/bench_util.h"
#include "provenance/bool_formula.h"
#include "provenance/prov_graph.h"
#include "repair/semantics_registry.h"
#include "sat/min_ones.h"
#include "workload/mas_generator.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

/// Raw registry-runner invocation (no engine facade): what these
/// microbenches measure is the runner itself.
RepairResult RunKind(SemanticsKind kind, Database* db,
                     const Program& program,
                     ProvenanceGraph* prov = nullptr) {
  RepairOptions options;
  options.record_provenance = prov;
  ExecContext ctx(options);
  return SemanticsRegistry::Global().GetKind(kind).Run(db, program, options,
                                                       &ctx);
}

MasData& SharedMas() {
  static MasData data = [] {
    MasConfig config;
    config.num_orgs = 30;
    config.num_authors = 450;
    config.num_pubs = 900;
    return GenerateMas(config);
  }();
  return data;
}

void BM_GrounderJoinChain(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(static_cast<int>(state.range(0)), mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Grounder grounder(&db);
    size_t n = 0;
    grounder.EnumerateRule(program.rules()[0], 0, BaseMatch::kLive,
                           DeltaMatch::kCurrent,
                           [&](const GroundAssignment&) {
                             ++n;
                             return true;
                           });
    benchmark::DoNotOptimize(n);
  }
}
// Programs 11-15: the single rule with 1..5 joined atoms (Figure 6b).
BENCHMARK(BM_GrounderJoinChain)->DenseRange(11, 15);

// The same join chains late in a deletion cascade: program 10's cascade
// is applied first, so most Writes/Cite slots are dead. The planner's
// live-count join ordering (vs. counting dead row slots) is what keeps
// these selective.
void BM_GrounderJoinChainLateCascade(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program cascade = MasProgram(10, mas.hubs);
  Program program = MasProgram(static_cast<int>(state.range(0)), mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&cascade, db).ok()) return;
  if (!ResolveProgram(&program, db).ok()) return;
  RunKind(SemanticsKind::kStage, &db, cascade);  // deletions stay applied
  for (auto _ : state) {
    Grounder grounder(&db);
    size_t n = 0;
    grounder.EnumerateRule(program.rules()[0], 0, BaseMatch::kLive,
                           DeltaMatch::kCurrent,
                           [&](const GroundAssignment&) {
                             ++n;
                             return true;
                           });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_GrounderJoinChainLateCascade)->DenseRange(11, 15);

void BM_HypotheticalGrounding(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(10, mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Grounder grounder(&db);
    DeletionCnfBuilder builder;
    for (size_t i = 0; i < program.rules().size(); ++i) {
      grounder.EnumerateRule(program.rules()[i], static_cast<int>(i),
                             BaseMatch::kLive, DeltaMatch::kHypothetical,
                             [&](const GroundAssignment& ga) {
                               builder.AddAssignment(ga);
                               return true;
                             });
    }
    benchmark::DoNotOptimize(builder.cnf().num_clauses());
  }
}
BENCHMARK(BM_HypotheticalGrounding);

// Ablation: the shared fixpoint in end mode (frozen bases) vs stage mode
// (shrinking bases) on the program-10 cascade.
void BM_FixpointEndMode(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(10, mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Database::State snap = db.SaveState();
    RepairResult r = RunKind(SemanticsKind::kEnd, &db, program);
    benchmark::DoNotOptimize(r.size());
    db.RestoreState(snap);
  }
}
BENCHMARK(BM_FixpointEndMode);

void BM_FixpointStageMode(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(10, mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Database::State snap = db.SaveState();
    RepairResult r = RunKind(SemanticsKind::kStage, &db, program);
    benchmark::DoNotOptimize(r.size());
    db.RestoreState(snap);
  }
}
BENCHMARK(BM_FixpointStageMode);

void BM_ProvenanceGraphBuild(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(20, mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Database::State snap = db.SaveState();
    ProvenanceGraph graph;
    RunKind(SemanticsKind::kEnd, &db, program, &graph);
    benchmark::DoNotOptimize(graph.num_assignments());
    db.RestoreState(snap);
  }
}
BENCHMARK(BM_ProvenanceGraphBuild);

void BM_StepAlgorithm2(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(static_cast<int>(state.range(0)), mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Database::State snap = db.SaveState();
    RepairResult r = RunKind(SemanticsKind::kStep, &db, program);
    benchmark::DoNotOptimize(r.size());
    db.RestoreState(snap);
  }
}
BENCHMARK(BM_StepAlgorithm2)->Arg(3)->Arg(8)->Arg(20);

void BM_IndependentAlgorithm1(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(static_cast<int>(state.range(0)), mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Database::State snap = db.SaveState();
    RepairResult r = RunKind(SemanticsKind::kIndependent, &db, program);
    benchmark::DoNotOptimize(r.size());
    db.RestoreState(snap);
  }
}
BENCHMARK(BM_IndependentAlgorithm1)->Arg(2)->Arg(14)->Arg(20);

// Min-Ones scaling on vertex-cover-shaped formulas: star-of-cliques with
// n hubs (optimum = n).
void BM_MinOnesVertexCover(benchmark::State& state) {
  const uint32_t hubs = static_cast<uint32_t>(state.range(0));
  Cnf cnf;
  uint32_t var = 0;
  for (uint32_t h = 0; h < hubs; ++h) {
    uint32_t center = var++;
    for (int leaf = 0; leaf < 8; ++leaf) {
      uint32_t l = var++;
      cnf.AddClause({PosLit(center), PosLit(l)});
    }
  }
  for (auto _ : state) {
    MinOnesResult r = MinOnesSat(cnf);
    benchmark::DoNotOptimize(r.num_true);
  }
}
BENCHMARK(BM_MinOnesVertexCover)->Arg(8)->Arg(32)->Arg(128);

void BM_StabilityCheck(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(9, mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Grounder grounder(&db);
    bool unstable = grounder.AnyAssignment(program, BaseMatch::kLive,
                                           DeltaMatch::kCurrent);
    benchmark::DoNotOptimize(unstable);
  }
}
BENCHMARK(BM_StabilityCheck);

// google-benchmark 1.8 replaced Run::error_occurred with Run::skipped;
// detect whichever member this library version has.
template <typename R, typename = void>
struct RunHasSkipped : std::false_type {};
template <typename R>
struct RunHasSkipped<R, std::void_t<decltype(std::declval<const R&>().skipped)>>
    : std::true_type {};

template <typename R>
bool RunWasSkipped(const R& run) {
  if constexpr (RunHasSkipped<R>::value) {
    return static_cast<bool>(run.skipped);
  } else {
    return run.error_occurred;
  }
}

// Forwards to the normal console output while recording every run into a
// BenchReporter, so DR_BENCH_JSON=path captures machine-readable results.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(BenchReporter* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (RunWasSkipped(run)) continue;
      json_->AddRow(run.benchmark_name())
          .Metric("real_time_ns", run.GetAdjustedRealTime())
          .Metric("cpu_time_ns", run.GetAdjustedCPUTime())
          .Metric("iterations", static_cast<int64_t>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReporter* json_;
};

}  // namespace
}  // namespace deltarepair

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  deltarepair::BenchReporter json("bench_micro_engine");
  deltarepair::JsonTeeReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  json.Flush();
  return 0;
}
