// Microbenchmarks (google-benchmark) of the engine substrates plus the
// ablations called out in DESIGN.md: join grounding, hypothetical
// grounding, the semi-naive fixpoint in both modes, provenance-graph
// construction, Algorithm 2's traversal, and Min-Ones scaling on
// vertex-cover instances.
#include <benchmark/benchmark.h>

#include <type_traits>
#include <utility>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "obs/trace.h"
#include "provenance/bool_formula.h"
#include "provenance/prov_graph.h"
#include "repair/semantics_registry.h"
#include "sat/min_ones.h"
#include "workload/mas_generator.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

/// Raw registry-runner invocation (no engine facade): what these
/// microbenches measure is the runner itself.
RepairResult RunKind(SemanticsKind kind, Database* db,
                     const Program& program,
                     ProvenanceGraph* prov = nullptr) {
  RepairOptions options;
  options.record_provenance = prov;
  ExecContext ctx(options);
  return SemanticsRegistry::Global().GetKind(kind).Run(db, program, options,
                                                       &ctx);
}

MasData& SharedMas() {
  static MasData data = [] {
    MasConfig config;
    config.num_orgs = 30;
    config.num_authors = 450;
    config.num_pubs = 900;
    return GenerateMas(config);
  }();
  return data;
}

void BM_GrounderJoinChain(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(static_cast<int>(state.range(0)), mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Grounder grounder(&db);
    size_t n = 0;
    grounder.EnumerateRule(program.rules()[0], 0, BaseMatch::kLive,
                           DeltaMatch::kCurrent,
                           [&](const GroundAssignment&) {
                             ++n;
                             return true;
                           });
    benchmark::DoNotOptimize(n);
  }
}
// Programs 11-15: the single rule with 1..5 joined atoms (Figure 6b).
BENCHMARK(BM_GrounderJoinChain)->DenseRange(11, 15);

// The same join chains late in a deletion cascade: program 10's cascade
// is applied first, so most Writes/Cite slots are dead. The planner's
// live-count join ordering (vs. counting dead row slots) is what keeps
// these selective.
void BM_GrounderJoinChainLateCascade(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program cascade = MasProgram(10, mas.hubs);
  Program program = MasProgram(static_cast<int>(state.range(0)), mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&cascade, db).ok()) return;
  if (!ResolveProgram(&program, db).ok()) return;
  RunKind(SemanticsKind::kStage, &db, cascade);  // deletions stay applied
  for (auto _ : state) {
    Grounder grounder(&db);
    size_t n = 0;
    grounder.EnumerateRule(program.rules()[0], 0, BaseMatch::kLive,
                           DeltaMatch::kCurrent,
                           [&](const GroundAssignment&) {
                             ++n;
                             return true;
                           });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_GrounderJoinChainLateCascade)->DenseRange(11, 15);

void BM_HypotheticalGrounding(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(10, mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Grounder grounder(&db);
    DeletionCnfBuilder builder;
    for (size_t i = 0; i < program.rules().size(); ++i) {
      grounder.EnumerateRule(program.rules()[i], static_cast<int>(i),
                             BaseMatch::kLive, DeltaMatch::kHypothetical,
                             [&](const GroundAssignment& ga) {
                               builder.AddAssignment(ga);
                               return true;
                             });
    }
    benchmark::DoNotOptimize(builder.cnf().num_clauses());
  }
}
BENCHMARK(BM_HypotheticalGrounding);

// Ablation: the shared fixpoint in end mode (frozen bases) vs stage mode
// (shrinking bases) on the program-10 cascade.
void BM_FixpointEndMode(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(10, mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Database::State snap = db.SaveState();
    RepairResult r = RunKind(SemanticsKind::kEnd, &db, program);
    benchmark::DoNotOptimize(r.size());
    db.RestoreState(snap);
  }
}
BENCHMARK(BM_FixpointEndMode);

void BM_FixpointStageMode(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(10, mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Database::State snap = db.SaveState();
    RepairResult r = RunKind(SemanticsKind::kStage, &db, program);
    benchmark::DoNotOptimize(r.size());
    db.RestoreState(snap);
  }
}
BENCHMARK(BM_FixpointStageMode);

void BM_ProvenanceGraphBuild(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(20, mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Database::State snap = db.SaveState();
    ProvenanceGraph graph;
    RunKind(SemanticsKind::kEnd, &db, program, &graph);
    benchmark::DoNotOptimize(graph.num_assignments());
    db.RestoreState(snap);
  }
}
BENCHMARK(BM_ProvenanceGraphBuild);

void BM_StepAlgorithm2(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(static_cast<int>(state.range(0)), mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Database::State snap = db.SaveState();
    RepairResult r = RunKind(SemanticsKind::kStep, &db, program);
    benchmark::DoNotOptimize(r.size());
    db.RestoreState(snap);
  }
}
BENCHMARK(BM_StepAlgorithm2)->Arg(3)->Arg(8)->Arg(20);

void BM_IndependentAlgorithm1(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(static_cast<int>(state.range(0)), mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Database::State snap = db.SaveState();
    RepairResult r = RunKind(SemanticsKind::kIndependent, &db, program);
    benchmark::DoNotOptimize(r.size());
    db.RestoreState(snap);
  }
}
BENCHMARK(BM_IndependentAlgorithm1)->Arg(2)->Arg(14)->Arg(20);

// Min-Ones scaling on vertex-cover-shaped formulas: star-of-cliques with
// n hubs (optimum = n).
void BM_MinOnesVertexCover(benchmark::State& state) {
  const uint32_t hubs = static_cast<uint32_t>(state.range(0));
  Cnf cnf;
  uint32_t var = 0;
  for (uint32_t h = 0; h < hubs; ++h) {
    uint32_t center = var++;
    for (int leaf = 0; leaf < 8; ++leaf) {
      uint32_t l = var++;
      cnf.AddClause({PosLit(center), PosLit(l)});
    }
  }
  for (auto _ : state) {
    MinOnesResult r = MinOnesSat(cnf);
    benchmark::DoNotOptimize(r.num_true);
  }
}
BENCHMARK(BM_MinOnesVertexCover)->Arg(8)->Arg(32)->Arg(128);

// Observability guard: models the cost the permanent span
// instrumentation adds to the grounder+fixpoint loop while tracing is
// DISABLED (the default, and the state the 2% budget applies to).
// "Disabled vs compiled-out" cannot be A/B-ed inside one binary, so the
// row reports a computed upper bound instead:
//
//   overhead_permille = 1000 * (1 + span_ns * spans / workload_ns)
//
// where span_ns is the measured cost of one disabled Span (the relaxed
// load + branch), spans counts the records one traced workload run
// produces (every disabled-span site the run passes), and workload_ns
// is the run's wall time with tracing off. The ideal instrumentation
// scores exactly 1000; bench_compare gates the row against a baseline
// of 1000 with a 2% band, so the gate trips when the modeled overhead
// exceeds 2% — machine-stable, unlike differencing two noisy wall
// clocks. (-DDR_DISABLE_TRACING remains the true compile-out for
// deployments that want even that bound gone.)
void BM_TracingOverheadDisabled(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(10, mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;

  // One traced run counts the span records the workload emits.
  Trace::SetRingCapacity(1 << 16);
  Trace::Enable(true);
  Trace::Clear();
  {
    Database::State snap = db.SaveState();
    RepairResult r = RunKind(SemanticsKind::kEnd, &db, program);
    benchmark::DoNotOptimize(r.size());
    db.RestoreState(snap);
  }
  const double spans = static_cast<double>(Trace::Collect().size());
  Trace::Enable(false);
  Trace::Clear();

  // Unit cost of a disabled span: the permanent price of one call site.
  constexpr int kProbes = 1 << 20;
  WallTimer probe_timer;
  for (int i = 0; i < kProbes; ++i) {
    Span span("bench.noop");
    benchmark::DoNotOptimize(&span);
  }
  const double span_ns = probe_timer.ElapsedSeconds() * 1e9 / kProbes;

  WallTimer workload_timer;
  uint64_t iters = 0;
  for (auto _ : state) {
    Database::State snap = db.SaveState();
    RepairResult r = RunKind(SemanticsKind::kEnd, &db, program);
    benchmark::DoNotOptimize(r.size());
    db.RestoreState(snap);
    ++iters;
  }
  const double workload_ns =
      workload_timer.ElapsedSeconds() * 1e9 / static_cast<double>(iters);
  state.counters["overhead_permille"] =
      1000.0 * (1.0 + span_ns * spans / workload_ns);
}
BENCHMARK(BM_TracingOverheadDisabled);

void BM_StabilityCheck(benchmark::State& state) {
  MasData& mas = SharedMas();
  Program program = MasProgram(9, mas.hubs);
  Database db = mas.db;
  if (!ResolveProgram(&program, db).ok()) return;
  for (auto _ : state) {
    Grounder grounder(&db);
    bool unstable = grounder.AnyAssignment(program, BaseMatch::kLive,
                                           DeltaMatch::kCurrent);
    benchmark::DoNotOptimize(unstable);
  }
}
BENCHMARK(BM_StabilityCheck);

// google-benchmark 1.8 replaced Run::error_occurred with Run::skipped;
// detect whichever member this library version has.
template <typename R, typename = void>
struct RunHasSkipped : std::false_type {};
template <typename R>
struct RunHasSkipped<R, std::void_t<decltype(std::declval<const R&>().skipped)>>
    : std::true_type {};

template <typename R>
bool RunWasSkipped(const R& run) {
  if constexpr (RunHasSkipped<R>::value) {
    return static_cast<bool>(run.skipped);
  } else {
    return run.error_occurred;
  }
}

// Forwards to the normal console output while recording every run into a
// BenchReporter, so DR_BENCH_JSON=path captures machine-readable results.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(BenchReporter* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (RunWasSkipped(run)) continue;
      BenchReporter::Row& row =
          json_->AddRow(run.benchmark_name())
              .Metric("real_time_ns", run.GetAdjustedRealTime())
              .Metric("cpu_time_ns", run.GetAdjustedCPUTime())
              .Metric("iterations", static_cast<int64_t>(run.iterations));
      for (const auto& [name, counter] : run.counters) {
        row.Metric(name, static_cast<double>(counter.value));
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReporter* json_;
};

}  // namespace
}  // namespace deltarepair

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  deltarepair::BenchReporter json("bench_micro_engine");
  deltarepair::JsonTeeReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  json.Flush();
  return 0;
}
