// Reproduces Figure 10: runtime of the four semantics and the
// HoloClean-style baseline, (a) for an increasing number of errors with
// 5000 rows, and (b) for an increasing number of rows with 700 errors.
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "holoclean/holoclean.h"
#include "repair/repair_engine.h"
#include "workload/error_injector.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

void RunSweep(const std::string& title,
              const std::vector<std::pair<size_t, size_t>>& rows_errors) {
  PrintHeader(title);
  TablePrinter table({"Rows", "Errors", "End", "Stage", "Step(Alg2)",
                      "Ind(Alg1)", "HoloClean"});
  std::vector<DenialConstraint> dcs = AuthorDenialConstraints();
  Program dc_program = DcsToProgram(dcs, DcTranslation::kRulePerAtom);
  for (auto [rows, errors] : rows_errors) {
    ErrorInjectorConfig config;
    config.num_rows = rows;
    config.num_errors = errors;
    InjectedTable injected = MakeInjectedAuthorTable(config);
    Database db = injected.MakeDb();
    StatusOr<RepairEngine> engine = RepairEngine::Create(&db, dc_program);
    if (!engine.ok()) return;
    std::vector<RepairOutcome> outcomes = engine->RunBatch(
        {RepairRequest{"end"}, RepairRequest{"stage"}, RepairRequest{"step"},
         RepairRequest{"independent"}});
    const RepairResult& end = outcomes[0].result;
    const RepairResult& stage = outcomes[1].result;
    const RepairResult& step = outcomes[2].result;
    const RepairResult& ind = outcomes[3].result;
    HoloCleanReport hc = RunHoloClean(&db, "Author", dcs);
    table.AddRow({std::to_string(rows), std::to_string(errors),
                  Ms(end.stats.total_seconds), Ms(stage.stats.total_seconds),
                  Ms(step.stats.total_seconds), Ms(ind.stats.total_seconds),
                  Ms(hc.total_seconds)});
  }
  table.Print();
}

int Main() {
  const double scale = BenchScale();
  const size_t base_rows = static_cast<size_t>(5000 * scale);
  std::vector<std::pair<size_t, size_t>> error_sweep;
  for (size_t errors : {100, 200, 300, 500, 700, 1000}) {
    error_sweep.push_back({base_rows, ScaledErrors(errors, base_rows)});
  }
  RunSweep("Figure 10a: runtime vs #errors (rows fixed)", error_sweep);

  std::vector<std::pair<size_t, size_t>> row_sweep;
  for (size_t rows : {2000, 5000, 10000, 20000}) {
    size_t scaled_rows = static_cast<size_t>(static_cast<double>(rows) * scale);
    row_sweep.push_back({scaled_rows, ScaledErrors(700, scaled_rows)});
  }
  RunSweep("Figure 10b: runtime vs #rows (errors fixed at 700)", row_sweep);
  std::printf(
      "\npaper shape: end/stage fastest throughout; Algorithms 1-2 and "
      "HoloClean scale with table size and error count.\n");
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
