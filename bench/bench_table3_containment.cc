// Reproduces Table 3: containment relationships between the results of
// the four semantics for MAS programs 1-20 and TPC-H programs T1-T6.
// Columns: Step = Stage (set equality), Ind ⊆ Stage, Ind ⊆ Step.
// The remaining relationships (Stage ⊆ End, Step ⊆ End, |Ind| minimum)
// always hold (Figure 3 / Prop. 3.20) and are verified here as a sanity
// footer.
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "repair/repair_engine.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

struct Row {
  std::string name;
  bool step_eq_stage;
  bool ind_in_stage;
  bool ind_in_step;
};

int Main() {
  PrintHeader("Table 3: containment of results (paper Sec. 6)");
  TablePrinter table({"Program", "Step = Stage", "Ind <= Stage",
                      "Ind <= Step", "|End|", "|Stage|", "|Step|", "|Ind|"});
  bool invariants_ok = true;

  auto run = [&](const std::string& name, Database* db, Program program) {
    StatusOr<RepairEngine> engine = RepairEngine::Create(db, program);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   engine.status().ToString().c_str());
      return;
    }
    std::vector<RepairOutcome> outcomes = engine->RunBatch(
        {RepairRequest{"end"}, RepairRequest{"stage"}, RepairRequest{"step"},
         RepairRequest{"independent"}});
    const RepairResult& end = outcomes[0].result;
    const RepairResult& stage = outcomes[1].result;
    const RepairResult& step = outcomes[2].result;
    const RepairResult& ind = outcomes[3].result;
    table.AddRow({name, Tick(step.SameSet(stage)), Tick(ind.SubsetOf(stage)),
                  Tick(ind.SubsetOf(step)), std::to_string(end.size()),
                  std::to_string(stage.size()), std::to_string(step.size()),
                  std::to_string(ind.size())});
    invariants_ok &= stage.SubsetOf(end) && step.SubsetOf(end) &&
                     ind.size() <= stage.size() && ind.size() <= step.size();
  };

  MasData mas = BenchMas();
  for (int num : AllMasPrograms()) {
    Database db = mas.db;
    run(std::to_string(num), &db, MasProgram(num, mas.hubs));
  }
  TpchData tpch = BenchTpch();
  for (int num : AllTpchPrograms()) {
    Database db = tpch.db;
    run("T-" + std::to_string(num), &db, TpchProgram(num, tpch.consts));
  }
  table.Print();
  std::printf(
      "\nFigure 3 invariants (Stage<=End, Step<=End, |Ind| minimum): %s\n",
      invariants_ok ? "all hold" : "VIOLATED");
  return invariants_ok ? 0 : 1;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
