// Consistent query answering over the MAS workload: for each cascade
// program and query, how expensive is grounding the query, building the
// per-semantics repair space, and deciding certain/possible per answer?
// Expected shape: end/stage spaces are one semantics run; the symbolic
// independent space pays Algorithm 1's CNF + Min-Ones once, then one
// incremental assumption solve per answer (cheap — the solver is warm).
// Step is excluded: its space is an exhaustive enumeration of activation
// interleavings and does not scale past toy instances.
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "cqa/cqa.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

struct BenchQuery {
  const char* name;
  const char* text;
};

int Main() {
  MasData mas = BenchMas();
  PrintHeader("CQA: certain/possible answers over MAS repair spaces");
  BenchReporter reporter("bench_cqa");
  TablePrinter table({"Program/Query", "Semantics", "Ground", "Space",
                      "Entail", "Total", "Answers", "Certain", "Possible",
                      "SolveCalls"});

  const BenchQuery queries[] = {
      {"authors", "Q(n) :- Author(a, n, o), Writes(a, p)."},
      {"pubs",
       "Q(p, t) :- Publication(p, t), Writes(a, p), Author(a, n, o)."},
  };
  const char* semantics[] = {"end", "stage", "independent"};

  for (int num : {5, 10, 20}) {
    Database db = mas.db;
    StatusOr<RepairEngine> engine =
        RepairEngine::Create(&db, MasProgram(num, mas.hubs));
    if (!engine.ok()) continue;
    for (const BenchQuery& query : queries) {
      std::vector<CqaRequest> requests;
      for (const char* name : semantics) {
        requests.emplace_back(name, query.text);
      }
      std::vector<CqaResult> results =
          AnswerQueryBatch(&engine.value(), requests, 1);
      for (const CqaResult& result : results) {
        if (!result.ok()) continue;
        const CqaStats& stats = result.stats;
        std::string label = StrFormat("mas%d/%s/%s", num, query.name,
                                      result.semantics.c_str());
        reporter.AddRow(label)
            .Metric("ground_seconds", stats.ground_seconds)
            .Metric("space_seconds", stats.space_seconds)
            // The slicing layer's share: cone_seconds (preprocessing +
            // residual decomposition, inside space_seconds) and
            // slice_seconds (per-cone sub-CNF builds, inside
            // entail_seconds for lazily built slices).
            .Metric("cone_seconds", stats.slice.cone_seconds)
            .Metric("slice_seconds", stats.slice.slice_seconds)
            .Metric("entail_seconds", stats.entail_seconds)
            .Metric("total_seconds", stats.total_seconds)
            .Metric("answers", static_cast<int64_t>(stats.answers))
            .Metric("monomials", static_cast<int64_t>(stats.monomials))
            .Metric("certain_answers",
                    static_cast<int64_t>(stats.certain_answers))
            .Metric("possible_answers",
                    static_cast<int64_t>(stats.possible_answers))
            .Metric("repair_size", static_cast<int64_t>(stats.repair_size))
            .Metric("sat_solve_calls",
                    static_cast<int64_t>(stats.repair.sat_solve_calls))
            .Metric("cone_vars", static_cast<int64_t>(stats.slice.cone_vars))
            .Metric("cone_clauses",
                    static_cast<int64_t>(stats.slice.cone_clauses))
            .Metric("sliced_solve_calls",
                    static_cast<int64_t>(stats.slice.sliced_solve_calls))
            .Metric("slice_fallbacks",
                    static_cast<int64_t>(stats.slice.slice_fallbacks))
            .Metric("space_exact", stats.space_exact ? "yes" : "no");
        table.AddRow({StrFormat("mas%d/%s", num, query.name),
                      result.semantics, Ms(stats.ground_seconds),
                      Ms(stats.space_seconds), Ms(stats.entail_seconds),
                      Ms(stats.total_seconds),
                      std::to_string(stats.answers),
                      std::to_string(stats.certain_answers),
                      std::to_string(stats.possible_answers),
                      std::to_string(stats.repair.sat_solve_calls)});
      }
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
