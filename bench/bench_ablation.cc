// Ablation harness for the design choices DESIGN.md calls out:
//  (1) Algorithm 2's max-benefit ordering vs an arbitrary ordering —
//      result sizes on the constraint-style MAS programs;
//  (2) Min-Ones component decomposition on/off — solver work on the
//      denial-constraint instances of the HoloClean comparison.
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "provenance/bool_formula.h"
#include "repair/repair_engine.h"
#include "workload/error_injector.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

int Main() {
  MasData mas = BenchMas();

  PrintHeader("Ablation 1: Algorithm 2 ordering (max benefit vs arbitrary)");
  TablePrinter step_table({"Program", "|S| max-benefit", "|S| arbitrary",
                           "time max-benefit", "time arbitrary"});
  for (int num : {2, 3, 4, 8, 11, 14, 20}) {
    Database db = mas.db;
    StatusOr<RepairEngine> engine =
        RepairEngine::Create(&db, MasProgram(num, mas.hubs));
    if (!engine.ok()) continue;
    RepairRequest request;
    request.semantics = "step";
    RepairResult with_benefit = engine->Execute(request).result;
    request.options.step.ordering = StepOrdering::kArbitrary;
    RepairResult without = engine->Execute(request).result;
    step_table.AddRow({std::to_string(num),
                       std::to_string(with_benefit.size()),
                       std::to_string(without.size()),
                       Ms(with_benefit.stats.total_seconds),
                       Ms(without.stats.total_seconds)});
  }
  step_table.Print();

  PrintHeader("Ablation 2: Min-Ones component decomposition");
  TablePrinter sat_table({"Errors", "components", "work (decomposed)",
                          "work (monolithic)", "|S| both"});
  std::vector<DenialConstraint> dcs = AuthorDenialConstraints();
  Program dc_program = DcsToProgram(dcs, DcTranslation::kRulePerAtom);
  for (size_t errors : {100, 300, 700}) {
    ErrorInjectorConfig config;
    config.num_rows = static_cast<size_t>(2000 * BenchScale());
    config.num_errors = ScaledErrors(errors, config.num_rows);
    InjectedTable injected = MakeInjectedAuthorTable(config);
    Database db = injected.MakeDb();
    // Build the negated provenance formula once.
    Program program = dc_program;
    if (!ResolveProgram(&program, db).ok()) return 1;
    DeletionCnfBuilder builder;
    Grounder grounder(&db);
    for (size_t i = 0; i < program.rules().size(); ++i) {
      grounder.EnumerateRule(program.rules()[i], static_cast<int>(i),
                             BaseMatch::kLive, DeltaMatch::kHypothetical,
                             [&](const GroundAssignment& ga) {
                               builder.AddAssignment(ga);
                               return true;
                             });
    }
    builder.mutable_cnf().DedupeClauses();
    MinOnesOptions decomposed;
    MinOnesResult with = MinOnesSat(builder.cnf(), decomposed);
    MinOnesOptions monolithic;
    monolithic.decompose_components = false;
    MinOnesResult without = MinOnesSat(builder.cnf(), monolithic);
    sat_table.AddRow(
        {std::to_string(errors), std::to_string(with.num_components),
         WithThousands(static_cast<int64_t>(with.engine_assignments)),
         WithThousands(static_cast<int64_t>(without.engine_assignments)),
         StrFormat("%u / %u", with.num_true, without.num_true)});
  }
  sat_table.Print();
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
