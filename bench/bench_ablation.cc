// Ablation harness for the design choices DESIGN.md calls out:
//  (1) Algorithm 2's max-benefit ordering vs an arbitrary ordering —
//      result sizes on the constraint-style MAS programs;
//  (2) Min-Ones component decomposition on/off — solver work on the
//      denial-constraint instances of the HoloClean comparison;
//  (3) CDCL clause learning and restarts on/off — the solver knobs the
//      incremental engine exposes, on the same DC instances.
// With DR_BENCH_JSON=path set, the Min-Ones rows (2) and (3) are also
// written as machine-readable metrics.
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "provenance/bool_formula.h"
#include "repair/repair_engine.h"
#include "workload/error_injector.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

int Main() {
  MasData mas = BenchMas();

  PrintHeader("Ablation 1: Algorithm 2 ordering (max benefit vs arbitrary)");
  TablePrinter step_table({"Program", "|S| max-benefit", "|S| arbitrary",
                           "time max-benefit", "time arbitrary"});
  for (int num : {2, 3, 4, 8, 11, 14, 20}) {
    Database db = mas.db;
    StatusOr<RepairEngine> engine =
        RepairEngine::Create(&db, MasProgram(num, mas.hubs));
    if (!engine.ok()) continue;
    RepairRequest request;
    request.semantics = "step";
    RepairResult with_benefit = engine->Execute(request).result;
    request.options.step.ordering = StepOrdering::kArbitrary;
    RepairResult without = engine->Execute(request).result;
    step_table.AddRow({std::to_string(num),
                       std::to_string(with_benefit.size()),
                       std::to_string(without.size()),
                       Ms(with_benefit.stats.total_seconds),
                       Ms(without.stats.total_seconds)});
  }
  step_table.Print();

  BenchReporter reporter("bench_ablation");

  TablePrinter sat_table({"Errors", "components", "dropped clauses",
                          "work (decomposed)", "work (monolithic)",
                          "time dec/mono", "|S| both", "optimal d/m"});
  TablePrinter cdcl_table({"Errors", "config", "time", "work", "conflicts",
                           "learned", "restarts", "|S|", "optimal"});
  std::vector<DenialConstraint> dcs = AuthorDenialConstraints();
  Program dc_program = DcsToProgram(dcs, DcTranslation::kRulePerAtom);
  for (size_t errors : {100, 300, 700}) {
    ErrorInjectorConfig config;
    config.num_rows = static_cast<size_t>(2000 * BenchScale());
    config.num_errors = ScaledErrors(errors, config.num_rows);
    InjectedTable injected = MakeInjectedAuthorTable(config);
    Database db = injected.MakeDb();
    // Build the negated provenance formula once.
    Program program = dc_program;
    if (!ResolveProgram(&program, db).ok()) return 1;
    DeletionCnfBuilder builder;
    Grounder grounder(&db);
    for (size_t i = 0; i < program.rules().size(); ++i) {
      grounder.EnumerateRule(program.rules()[i], static_cast<int>(i),
                             BaseMatch::kLive, DeltaMatch::kHypothetical,
                             [&](const GroundAssignment& ga) {
                               builder.AddAssignment(ga);
                               return true;
                             });
    }
    const Cnf::NormalizeStats& norm = builder.Normalize();
    uint64_t dropped = norm.duplicate_clauses + norm.unit_subsumed_clauses;

    WallTimer dec_timer;
    MinOnesOptions decomposed;
    MinOnesResult with = MinOnesSat(builder.cnf(), decomposed);
    double dec_seconds = dec_timer.ElapsedSeconds();
    WallTimer mono_timer;
    MinOnesOptions monolithic;
    monolithic.decompose_components = false;
    MinOnesResult without = MinOnesSat(builder.cnf(), monolithic);
    double mono_seconds = mono_timer.ElapsedSeconds();
    sat_table.AddRow(
        {std::to_string(errors), std::to_string(with.num_components),
         WithThousands(static_cast<int64_t>(dropped)),
         WithThousands(static_cast<int64_t>(with.engine_assignments)),
         WithThousands(static_cast<int64_t>(without.engine_assignments)),
         StrFormat("%s / %s", Ms(dec_seconds).c_str(),
                   Ms(mono_seconds).c_str()),
         StrFormat("%u / %u", with.num_true, without.num_true),
         StrFormat("%s / %s", Tick(with.optimal), Tick(without.optimal))});
    reporter.AddRow(StrFormat("min_ones_decomposition/%zu", errors))
        .Metric("components", static_cast<int64_t>(with.num_components))
        .Metric("clauses_dropped", static_cast<int64_t>(dropped))
        .Metric("work_decomposed",
                static_cast<int64_t>(with.engine_assignments))
        .Metric("work_monolithic",
                static_cast<int64_t>(without.engine_assignments))
        .Metric("seconds_decomposed", dec_seconds)
        .Metric("seconds_monolithic", mono_seconds)
        .Metric("num_true", static_cast<int64_t>(with.num_true));

    // Ablation 3: learning / restarts.
    struct CdclConfig {
      const char* name;
      bool learning;
      bool restarts;
    };
    for (const CdclConfig& cc :
         {CdclConfig{"learn+restart", true, true},
          CdclConfig{"learn only", true, false},
          CdclConfig{"restart only", false, true},
          CdclConfig{"neither", false, false}}) {
      MinOnesOptions options;
      options.enable_learning = cc.learning;
      options.enable_restarts = cc.restarts;
      WallTimer timer;
      MinOnesResult r = MinOnesSat(builder.cnf(), options);
      double seconds = timer.ElapsedSeconds();
      cdcl_table.AddRow(
          {std::to_string(errors), cc.name, Ms(seconds),
           WithThousands(static_cast<int64_t>(r.engine_assignments)),
           WithThousands(static_cast<int64_t>(r.solver.conflicts)),
           WithThousands(static_cast<int64_t>(r.solver.learned_clauses)),
           std::to_string(r.solver.restarts), std::to_string(r.num_true),
           Tick(r.optimal)});
      reporter
          .AddRow(StrFormat("min_ones_cdcl/%zu/%s", errors, cc.name))
          .Metric("seconds", seconds)
          .Metric("work", static_cast<int64_t>(r.engine_assignments))
          .Metric("conflicts", static_cast<int64_t>(r.solver.conflicts))
          .Metric("learned",
                  static_cast<int64_t>(r.solver.learned_clauses))
          .Metric("restarts", static_cast<int64_t>(r.solver.restarts))
          .Metric("num_true", static_cast<int64_t>(r.num_true))
          .Metric("optimal", std::string(r.optimal ? "yes" : "no"));
    }
  }
  PrintHeader("Ablation 2: Min-Ones component decomposition");
  sat_table.Print();
  PrintHeader("Ablation 3: CDCL learning / restarts (decomposed instances)");
  cdcl_table.Print();
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
