// Reproduces Figure 8: runtime breakdown of Algorithm 1 (independent:
// Eval / Process Prov / Solve) and Algorithm 2 (step: Eval / Process Prov
// / Traverse), averaged over MAS programs 1-15 and 16-20, as in the
// paper's four pie charts.
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "repair/repair_engine.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

struct Phases {
  double eval = 0, process = 0, finish = 0;

  void Accumulate(const RepairStats& stats, bool alg1) {
    eval += stats.eval_seconds;
    process += stats.process_prov_seconds;
    finish += alg1 ? stats.solve_seconds : stats.traverse_seconds;
  }

  std::vector<std::string> Percentages() const {
    double total = eval + process + finish;
    if (total <= 0) total = 1;
    return {StrFormat("%.1f%%", 100 * eval / total),
            StrFormat("%.1f%%", 100 * process / total),
            StrFormat("%.1f%%", 100 * finish / total)};
  }
};

int Main() {
  MasData mas = BenchMas();
  Phases alg1_a, alg1_b, alg2_a, alg2_b;  // a: programs 1-15; b: 16-20
  for (int num : AllMasPrograms()) {
    Database db = mas.db;
    StatusOr<RepairEngine> engine =
        RepairEngine::Create(&db, MasProgram(num, mas.hubs));
    if (!engine.ok()) continue;
    std::vector<RepairOutcome> outcomes = engine->RunBatch(
        {RepairRequest{"independent"}, RepairRequest{"step"}});
    const RepairResult& ind = outcomes[0].result;
    const RepairResult& step = outcomes[1].result;
    if (num <= 15) {
      alg1_a.Accumulate(ind.stats, true);
      alg2_a.Accumulate(step.stats, false);
    } else {
      alg1_b.Accumulate(ind.stats, true);
      alg2_b.Accumulate(step.stats, false);
    }
  }
  PrintHeader("Figure 8: runtime breakdown of Algorithms 1 and 2");
  TablePrinter table(
      {"Chart", "Eval", "Process Prov", "Solve/Traverse"});
  auto add = [&](const char* name, const Phases& p) {
    auto pct = p.Percentages();
    table.AddRow({name, pct[0], pct[1], pct[2]});
  };
  add("(a) Alg 1, programs 1-15", alg1_a);
  add("(b) Alg 2, programs 1-15", alg2_a);
  add("(c) Alg 1, programs 16-20", alg1_b);
  add("(d) Alg 2, programs 16-20", alg2_b);
  table.Print();
  std::printf(
      "\npaper shape: Eval dominates everywhere; Solve grows for 16-20 in "
      "(c); Traverse dominates 16-20 in (d).\n");
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
