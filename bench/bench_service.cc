// Service-layer benchmark: what the snapshot+WAL store buys at startup
// (one binary read + decode vs re-importing CSVs), how fast WAL replay
// runs, and the serve rate of the repair server over loopback TCP.
// Expected shape: snapshot startup is several times faster than the CSV
// path — the columnar decode skips text parsing and BulkLoadRows skips
// re-hashing the dedupe table.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "relation/csv.h"
#include "service/client.h"
#include "service/request_codec.h"
#include "service/server.h"
#include "service/snapshot.h"
#include "service/store.h"
#include "service/wal.h"
#include "workload/programs.h"

namespace fs = std::filesystem;

namespace deltarepair {
namespace {

constexpr int kTrials = 9;

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

int Main() {
  MasData mas = BenchMas();
  const size_t total_tuples = mas.db.TotalLive();
  PrintHeader("Service: snapshot startup, WAL replay, serve rate");
  std::printf("MAS instance: %zu relations, %zu tuples\n",
              mas.db.num_relations(), total_tuples);
  BenchReporter reporter("bench_service");

  std::error_code ec;
  fs::path dir =
      fs::temp_directory_path() / "drepair_bench_service";
  fs::remove_all(dir, ec);
  fs::create_directories(dir / "data", ec);
  fs::create_directories(dir / "store", ec);

  // Materialize the instance both ways: CSV files and a snapshot.
  std::vector<std::string> csv_files;
  for (uint32_t r = 0; r < mas.db.num_relations(); ++r) {
    fs::path path =
        dir / "data" / (mas.db.relation(r).schema().name() + ".csv");
    std::ofstream out(path);
    out << RelationToCsv(mas.db, r);
    csv_files.push_back(path.string());
  }
  std::string snapshot_path = (dir / "store" / "snapshot.drs").string();
  Status st = WriteSnapshotFile(mas.db, snapshot_path);
  if (!st.ok()) {
    std::fprintf(stderr, "snapshot: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("snapshot size: %.1f KB\n",
              static_cast<double>(fs::file_size(snapshot_path, ec)) / 1024);

  // --- Startup: CSV re-import vs snapshot load. ---------------------------
  std::vector<double> csv_times, snap_times;
  for (int t = 0; t < kTrials; ++t) {
    {
      Database db;
      WallTimer timer;
      for (const std::string& path : csv_files) {
        st = LoadCsvFile(&db, path);
        if (!st.ok()) {
          std::fprintf(stderr, "csv: %s\n", st.ToString().c_str());
          return 1;
        }
      }
      csv_times.push_back(timer.ElapsedSeconds());
      if (db.TotalLive() != total_tuples) {
        std::fprintf(stderr, "csv import lost tuples\n");
        return 1;
      }
    }
    {
      Database db;
      WallTimer timer;
      st = LoadSnapshotFile(snapshot_path, &db);
      snap_times.push_back(timer.ElapsedSeconds());
      if (!st.ok() || db.TotalLive() != total_tuples) {
        std::fprintf(stderr, "snapshot load failed\n");
        return 1;
      }
    }
  }
  double csv_s = Median(csv_times);
  double snap_s = Median(snap_times);
  // Speedup from per-trial ratios: each trial runs both loads back to
  // back, so a machine-wide slow patch hits both sides of one ratio and
  // cancels, where a ratio of independent medians would wobble.
  std::vector<double> ratios;
  for (int t = 0; t < kTrials; ++t) {
    if (snap_times[t] > 0) ratios.push_back(csv_times[t] / snap_times[t]);
  }
  double speedup = ratios.empty() ? 0 : Median(ratios);

  // --- WAL replay. --------------------------------------------------------
  const size_t kWalRecords = 2000;
  std::string wal_path = (dir / "store" / "bench_wal.drl").string();
  {
    WalWriter wal;
    st = wal.Open(wal_path);
    if (!st.ok()) {
      std::fprintf(stderr, "wal: %s\n", st.ToString().c_str());
      return 1;
    }
    uint32_t cite =
        static_cast<uint32_t>(mas.db.RelationIndex(kMasCite));
    for (size_t i = 0; i < kWalRecords; ++i) {
      std::vector<Tuple> batch = {
          {Value(static_cast<int64_t>(1000000 + i)),
           Value(static_cast<int64_t>(2000000 + i))}};
      st = wal.Append(WalOp::kInsert, cite, 2, batch, false);
      if (!st.ok()) {
        std::fprintf(stderr, "wal append: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  std::vector<double> replay_times;
  size_t replay_applied = 0;
  for (int t = 0; t < kTrials; ++t) {
    Database db = mas.db;  // copy outside the timed region
    WalReplayStats stats;
    WallTimer timer;
    st = ReplayWal(wal_path, &db, &stats);
    replay_times.push_back(timer.ElapsedSeconds());
    if (!st.ok() || stats.records_applied != kWalRecords) {
      std::fprintf(stderr, "wal replay failed\n");
      return 1;
    }
    replay_applied = stats.records_applied;
  }
  double replay_s = Median(replay_times);

  // --- Serve rate over loopback. ------------------------------------------
  fs::create_directories(dir / "serve", ec);
  StatusOr<std::unique_ptr<PersistentStore>> store =
      PersistentStore::Create((dir / "serve").string(), mas.db);
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
    return 1;
  }
  StatusOr<std::unique_ptr<RepairServer>> server = RepairServer::Start(
      std::move(store).value(), MasProgram(1, mas.hubs));
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  int port = (*server)->port();

  const int kPings = 200;
  WallTimer ping_timer;
  for (int i = 0; i < kPings; ++i) {
    StatusOr<std::string> r =
        CallServerJson(port, FrameType::kPingRequest, "");
    if (!r.ok()) {
      std::fprintf(stderr, "ping: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }
  double ping_s = ping_timer.ElapsedSeconds();

  const int kRepairs = 10;
  std::string repair_payload =
      EncodeRepairRequest(RepairRequest("end"));
  WallTimer repair_timer;
  for (int i = 0; i < kRepairs; ++i) {
    StatusOr<std::string> r =
        CallServerJson(port, FrameType::kRepairRequest, repair_payload);
    if (!r.ok()) {
      std::fprintf(stderr, "repair: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }
  double repair_s = repair_timer.ElapsedSeconds();
  (*server)->Drain();

  // --- Report. ------------------------------------------------------------
  TablePrinter table({"Row", "Median", "Notes"});
  table.AddRow({"startup/csv_import", Ms(csv_s),
                StrFormat("%zu tuples", total_tuples)});
  table.AddRow({"startup/snapshot_load", Ms(snap_s),
                StrFormat("%.1fx faster", speedup)});
  table.AddRow({"wal/replay", Ms(replay_s),
                StrFormat("%zu records", replay_applied)});
  table.AddRow({"serve/ping", Ms(ping_s / kPings),
                StrFormat("%.0f req/s", kPings / ping_s)});
  table.AddRow({"serve/repair_end", Ms(repair_s / kRepairs),
                StrFormat("%.0f req/s", kRepairs / repair_s)});
  table.Print();
  std::printf("\nsnapshot startup speedup over CSV re-import: %.1fx\n",
              speedup);

  reporter.AddRow("startup_csv_import")
      .Metric("seconds", csv_s)
      .Metric("tuples", static_cast<int64_t>(total_tuples));
  reporter.AddRow("startup_snapshot_load")
      .Metric("seconds", snap_s)
      .Metric("speedup_x", speedup);
  reporter.AddRow("wal_replay")
      .Metric("seconds", replay_s)
      .Metric("records", static_cast<int64_t>(replay_applied));
  reporter.AddRow("serve_ping")
      .Metric("seconds", ping_s / kPings);
  reporter.AddRow("serve_repair_end")
      .Metric("seconds", repair_s / kRepairs);

  fs::remove_all(dir, ec);
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
