// Parallel batch throughput: the Figs. 6-10 sweep shape — four semantics
// x several MAS cascade programs, many requests per engine — executed by
// RepairEngine::RunBatch sequentially and with a worker pool over
// thread-local instance views. Reports per-program and aggregate
// wall-clock plus the speedup, and checks that the parallel outcomes are
// identical to the sequential ones. DR_BENCH_JSON=path captures the rows
// (speedup lands in the perf trajectory); DR_THREADS overrides the
// worker count (default 4).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "repair/repair_engine.h"
#include "workload/programs.h"

using namespace deltarepair;

namespace {

int BenchThreads() {
  const char* env = std::getenv("DR_THREADS");
  if (env == nullptr) return 4;
  int v = std::atoi(env);
  return v > 0 ? v : 4;
}

bool SameOutcomes(const std::vector<RepairOutcome>& a,
                  const std::vector<RepairOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].ok() != b[i].ok()) return false;
    if (a[i].termination != b[i].termination) return false;
    if (!(a[i].result.deleted == b[i].result.deleted)) return false;
  }
  return true;
}

}  // namespace

int main() {
  const int threads = BenchThreads();
  const int repeats_per_semantics = 3;
  const std::vector<int> programs = {2, 9, 10, 20};

  MasData mas = BenchMas();
  PrintHeader(StrFormat("Parallel RunBatch — MAS sweep, %d threads",
                        threads));
  std::printf("instance: %zu tuples; %d requests per program (4 semantics "
              "x %d repeats)\n",
              mas.db.TotalLive(), 4 * repeats_per_semantics,
              repeats_per_semantics);

  BenchReporter json("bench_batch_parallel");
  TablePrinter table({"program", "requests", "seq", "parallel", "speedup",
                      "identical"});

  double seq_total = 0;
  double par_total = 0;
  bool all_identical = true;
  for (int p : programs) {
    StatusOr<RepairEngine> engine =
        RepairEngine::Create(&mas.db, MasProgram(p, mas.hubs));
    if (!engine.ok()) {
      std::fprintf(stderr, "program %d: %s\n", p,
                   engine.status().ToString().c_str());
      return 1;
    }
    std::vector<RepairRequest> requests;
    for (int r = 0; r < repeats_per_semantics; ++r) {
      for (const std::string& name : SemanticsRegistry::Global().Names()) {
        requests.push_back(RepairRequest(name));
      }
    }

    WallTimer seq_timer;
    std::vector<RepairOutcome> sequential = engine->RunBatch(requests, 1);
    double seq_seconds = seq_timer.ElapsedSeconds();

    WallTimer par_timer;
    std::vector<RepairOutcome> parallel =
        engine->RunBatch(requests, threads);
    double par_seconds = par_timer.ElapsedSeconds();

    bool identical = SameOutcomes(sequential, parallel);
    all_identical = all_identical && identical;
    seq_total += seq_seconds;
    par_total += par_seconds;

    double speedup = par_seconds > 0 ? seq_seconds / par_seconds : 0;
    table.AddRow({StrFormat("%d", p), StrFormat("%zu", requests.size()),
                  Ms(seq_seconds), Ms(par_seconds),
                  StrFormat("%.2fx", speedup), Tick(identical)});
    json.AddRow(StrFormat("mas_program_%d", p))
        .Metric("requests", static_cast<int64_t>(requests.size()))
        .Metric("threads", static_cast<int64_t>(threads))
        .Metric("seq_seconds", seq_seconds)
        .Metric("par_seconds", par_seconds)
        .Metric("speedup", speedup)
        .Metric("identical", identical ? "yes" : "no");
  }
  table.Print();

  double speedup = par_total > 0 ? seq_total / par_total : 0;
  std::printf("\ntotal: sequential %s, parallel %s — %.2fx with %d "
              "threads; outcomes identical: %s\n",
              Ms(seq_total).c_str(), Ms(par_total).c_str(), speedup,
              threads, Tick(all_identical));
  json.AddRow("mas_sweep_total")
      .Metric("threads", static_cast<int64_t>(threads))
      .Metric("seq_seconds", seq_total)
      .Metric("par_seconds", par_total)
      .Metric("speedup", speedup)
      .Metric("identical", all_identical ? "yes" : "no");
  return all_identical ? 0 : 1;
}
