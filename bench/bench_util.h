// Shared helpers for the experiment harnesses. Every bench prints the
// rows/series of one table or figure from the paper's Sec. 6 (see
// DESIGN.md's per-experiment index). DR_SCALE scales the generated
// workloads (1.0 default; ~4 approaches the paper's table sizes).
#ifndef DELTAREPAIR_BENCH_BENCH_UTIL_H_
#define DELTAREPAIR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/string_util.h"
#include "workload/mas_generator.h"
#include "workload/tpch_generator.h"

namespace deltarepair {

inline double BenchScale() {
  const char* env = std::getenv("DR_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline MasData BenchMas() {
  MasConfig config;  // defaults: 60 orgs / 900 authors / 1800 pubs
  return GenerateMas(config.Scaled(BenchScale()));
}

inline TpchData BenchTpch() {
  TpchConfig config;
  return GenerateTpch(config.Scaled(BenchScale()));
}

inline std::string Ms(double seconds) {
  return StrFormat("%.2fms", seconds * 1e3);
}

inline const char* Tick(bool b) { return b ? "yes" : "no"; }

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace deltarepair

#endif  // DELTAREPAIR_BENCH_BENCH_UTIL_H_
