// Shared helpers for the experiment harnesses. Every bench prints the
// rows/series of one table or figure from the paper's Sec. 6 (see
// DESIGN.md's per-experiment index). DR_SCALE scales the generated
// workloads (1.0 default; ~4 approaches the paper's table sizes).
#ifndef DELTAREPAIR_BENCH_BENCH_UTIL_H_
#define DELTAREPAIR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/string_util.h"
#include "workload/mas_generator.h"
#include "workload/tpch_generator.h"

namespace deltarepair {

inline double BenchScale() {
  const char* env = std::getenv("DR_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline MasData BenchMas() {
  MasConfig config;  // defaults: 60 orgs / 900 authors / 1800 pubs
  return GenerateMas(config.Scaled(BenchScale()));
}

inline TpchData BenchTpch() {
  TpchConfig config;
  return GenerateTpch(config.Scaled(BenchScale()));
}

inline std::string Ms(double seconds) {
  return StrFormat("%.2fms", seconds * 1e3);
}

inline const char* Tick(bool b) { return b ? "yes" : "no"; }

/// Scales a paper-table error count by DR_SCALE and clamps it to the
/// (equally scaled) table size, so small DR_SCALE runs keep the
/// injector's num_errors <= num_rows invariant.
inline size_t ScaledErrors(size_t errors, size_t num_rows) {
  size_t scaled = static_cast<size_t>(static_cast<double>(errors) *
                                      BenchScale());
  if (scaled < 1) scaled = 1;
  return scaled < num_rows ? scaled : num_rows;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Path for machine-readable bench output, or "" when not requested.
inline std::string BenchJsonPath() {
  const char* env = std::getenv("DR_BENCH_JSON");
  return env != nullptr ? std::string(env) : std::string();
}

/// Collects per-row metrics from a bench run and, when DR_BENCH_JSON=path
/// is set, writes them as one JSON document on Flush() (or destruction):
///   {"bench": "...", "scale": 1.0, "rows":
///     [{"name": "...", "<metric>": <value>, ...}, ...]}
/// When DR_BENCH_JSON is unset the reporter is inert, so the printf
/// tables remain the only output.
class BenchReporter {
 public:
  explicit BenchReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)), path_(BenchJsonPath()) {}
  ~BenchReporter() { Flush(); }

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  class Row {
   public:
    Row& Metric(std::string key, double value) {
      doubles_.emplace_back(std::move(key), value);
      return *this;
    }
    Row& Metric(std::string key, int64_t value) {
      ints_.emplace_back(std::move(key), value);
      return *this;
    }
    Row& Metric(std::string key, std::string value) {
      strings_.emplace_back(std::move(key), std::move(value));
      return *this;
    }

   private:
    friend class BenchReporter;
    explicit Row(std::string name) : name_(std::move(name)) {}
    std::string name_;
    std::vector<std::pair<std::string, double>> doubles_;
    std::vector<std::pair<std::string, int64_t>> ints_;
    std::vector<std::pair<std::string, std::string>> strings_;
  };

  /// Adds a result row; chain Metric() calls on the returned reference.
  Row& AddRow(std::string name) {
    rows_.push_back(Row(std::move(name)));
    return rows_.back();
  }

  /// Writes the JSON document if DR_BENCH_JSON is set. Idempotent.
  void Flush() {
    if (path_.empty() || flushed_) return;
    flushed_ = true;
    JsonWriter w;
    w.BeginObject()
        .Field("bench", bench_name_)
        .Field("scale", BenchScale())
        .Key("rows")
        .BeginArray();
    for (const Row& row : rows_) {
      w.BeginObject().Field("name", row.name_);
      for (const auto& [key, value] : row.ints_) w.Field(key, value);
      for (const auto& [key, value] : row.doubles_) w.Field(key, value);
      for (const auto& [key, value] : row.strings_) {
        w.Field(key, std::string_view(value));
      }
      w.EndObject();
    }
    w.EndArray().EndObject();
    if (WriteFileOrWarn(path_, w.str())) {
      std::fprintf(stderr, "bench: wrote %zu rows to %s\n", rows_.size(),
                   path_.c_str());
    }
  }

 private:
  std::string bench_name_;
  std::string path_;
  std::deque<Row> rows_;  // deque: AddRow() references stay valid
  bool flushed_ = false;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_BENCH_BENCH_UTIL_H_
