// Reproduces Figure 9: (a) result sizes and (b) runtimes of the four
// semantics on the TPC-H programs T1-T6 of Table 2.
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "repair/repair_engine.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

int Main() {
  TpchData tpch = BenchTpch();
  std::printf("TPC-H instance: %s tuples (DR_SCALE=%.2f)\n",
              WithThousands(static_cast<int64_t>(tpch.db.TotalLive())).c_str(),
              BenchScale());

  PrintHeader("Figure 9a: result sizes, TPC-H programs");
  TablePrinter sizes({"Program", "End", "Stage", "Step", "Independent"});
  PrintHeader("Figure 9b: runtimes (collected in the same pass)");
  TablePrinter times({"Program", "End", "Stage", "Step(Alg2)", "Ind(Alg1)"});
  for (int num : AllTpchPrograms()) {
    Database db = tpch.db;
    StatusOr<RepairEngine> engine =
        RepairEngine::Create(&db, TpchProgram(num, tpch.consts));
    if (!engine.ok()) continue;
    std::vector<RepairOutcome> outcomes = engine->RunBatch(
        {RepairRequest{"end"}, RepairRequest{"stage"}, RepairRequest{"step"},
         RepairRequest{"independent"}});
    const RepairResult& end = outcomes[0].result;
    const RepairResult& stage = outcomes[1].result;
    const RepairResult& step = outcomes[2].result;
    const RepairResult& ind = outcomes[3].result;
    std::string name = "T-" + std::to_string(num);
    sizes.AddRow({name, std::to_string(end.size()),
                  std::to_string(stage.size()), std::to_string(step.size()),
                  std::to_string(ind.size())});
    times.AddRow({name, Ms(end.stats.total_seconds),
                  Ms(stage.stats.total_seconds),
                  Ms(step.stats.total_seconds),
                  Ms(ind.stats.total_seconds)});
  }
  std::printf("\n-- Figure 9a --\n");
  sizes.Print();
  std::printf("\n-- Figure 9b --\n");
  times.Print();
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
