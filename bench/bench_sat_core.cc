// Microbench of the CDCL core itself (no repair layers): random 3-SAT
// near the phase transition (sat-heavy and unsat-heavy ratios),
// pigeonhole UNSAT proofs, and the incremental Min-Ones bounded search
// on vertex-cover-shaped formulas. Rows report wall time and the solver
// counters (conflicts, learned clauses, restarts, propagations), and are
// written as JSON when DR_BENCH_JSON=path is set.
#include <cinttypes>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "sat/min_ones.h"
#include "sat/solver.h"

namespace deltarepair {
namespace {

Cnf Random3Sat(uint64_t seed, uint32_t num_vars, double clause_ratio) {
  Rng rng(seed);
  Cnf cnf(num_vars);
  int num_clauses = static_cast<int>(num_vars * clause_ratio);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> lits;
    while (lits.size() < 3) {
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(num_vars));
      bool dup = false;
      for (Lit l : lits) dup |= LitVar(l) == v;
      if (dup) continue;
      lits.push_back(rng.NextBool(0.5) ? PosLit(v) : NegLit(v));
    }
    cnf.AddClause(std::move(lits));
  }
  return cnf;
}

Cnf Pigeonhole(int holes) {
  Cnf cnf;
  for (int p = 0; p < holes + 1; ++p) {
    std::vector<Lit> at_least;
    for (int h = 0; h < holes; ++h) {
      at_least.push_back(PosLit(static_cast<uint32_t>(p * holes + h)));
    }
    cnf.AddClause(std::move(at_least));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < holes + 1; ++p1) {
      for (int p2 = p1 + 1; p2 < holes + 1; ++p2) {
        cnf.AddClause({NegLit(static_cast<uint32_t>(p1 * holes + h)),
                       NegLit(static_cast<uint32_t>(p2 * holes + h))});
      }
    }
  }
  return cnf;
}

/// Star-of-cliques vertex cover: `hubs` stars of 8 leaves (optimum =
/// hubs) — the Min-Ones shape of denial-constraint instances.
Cnf VertexCoverStars(uint32_t hubs) {
  Cnf cnf;
  uint32_t var = 0;
  for (uint32_t h = 0; h < hubs; ++h) {
    uint32_t center = var++;
    for (int leaf = 0; leaf < 8; ++leaf) {
      uint32_t l = var++;
      cnf.AddClause({PosLit(center), PosLit(l)});
    }
  }
  return cnf;
}

int Main() {
  BenchReporter reporter("bench_sat_core");
  TablePrinter table({"Instance", "result", "time", "conflicts", "learned",
                      "restarts", "props"});
  auto report = [&](const std::string& name, const Cnf& cnf,
                    int repeats) {
    SolveStatus status = SolveStatus::kUnknown;
    SolverStats total;
    WallTimer timer;
    for (int r = 0; r < repeats; ++r) {
      SolverOptions options;
      options.inprocessing = true;  // the repair stack's configuration
      CdclSolver solver(options);
      solver.AddCnf(cnf);
      status = solver.Solve();
      total.Add(solver.stats());
    }
    double seconds = timer.ElapsedSeconds() / repeats;
    table.AddRow({name, SolveStatusName(status), Ms(seconds),
                  WithThousands(static_cast<int64_t>(
                      total.conflicts / static_cast<uint64_t>(repeats))),
                  WithThousands(static_cast<int64_t>(
                      total.learned_clauses /
                      static_cast<uint64_t>(repeats))),
                  std::to_string(total.restarts /
                                 static_cast<uint64_t>(repeats)),
                  WithThousands(static_cast<int64_t>(
                      total.propagations /
                      static_cast<uint64_t>(repeats)))});
    reporter.AddRow(name)
        .Metric("seconds", seconds)
        .Metric("conflicts", static_cast<int64_t>(
                                 total.conflicts /
                                 static_cast<uint64_t>(repeats)))
        .Metric("propagations", static_cast<int64_t>(
                                    total.propagations /
                                    static_cast<uint64_t>(repeats)))
        .Metric("result", std::string(SolveStatusName(status)));
  };

  double scale = BenchScale();
  uint32_t n3 = static_cast<uint32_t>(150 * scale);
  if (n3 < 40) n3 = 40;
  for (int s = 0; s < 3; ++s) {
    report(StrFormat("3sat_sat_n%u_r4.0/%d", n3, s),
           Random3Sat(1000 + static_cast<uint64_t>(s), n3, 4.0), 3);
  }
  for (int s = 0; s < 3; ++s) {
    report(StrFormat("3sat_unsat_n%u_r4.6/%d", n3, s),
           Random3Sat(2000 + static_cast<uint64_t>(s), n3, 4.6), 3);
  }
  int php = scale >= 1.0 ? 7 : 6;
  report(StrFormat("pigeonhole_%d", php), Pigeonhole(php), 1);

  // Min-Ones bounded search (solver + totalizer + bisection end-to-end).
  TablePrinter mo_table({"Instance", "optimum", "time", "work",
                         "solve calls", "optimal"});
  for (uint32_t hubs : {32u, 128u, 512u}) {
    Cnf cnf = VertexCoverStars(hubs);
    WallTimer timer;
    MinOnesResult r = MinOnesSat(cnf);
    double seconds = timer.ElapsedSeconds();
    std::string name = StrFormat("min_ones_vc_stars_%u", hubs);
    mo_table.AddRow({name, std::to_string(r.num_true), Ms(seconds),
                     WithThousands(static_cast<int64_t>(
                         r.engine_assignments)),
                     std::to_string(r.solver.solve_calls),
                     Tick(r.optimal)});
    reporter.AddRow(name)
        .Metric("seconds", seconds)
        .Metric("optimum", static_cast<int64_t>(r.num_true))
        .Metric("work", static_cast<int64_t>(r.engine_assignments))
        .Metric("optimal", std::string(r.optimal ? "yes" : "no"));
  }

  PrintHeader("SAT core: CDCL on random 3-SAT and pigeonhole");
  table.Print();
  PrintHeader("SAT core: incremental Min-Ones bounded search");
  mo_table.Print();
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
