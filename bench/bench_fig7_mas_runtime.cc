// Reproduces Figure 7: execution time of the four semantics' algorithms
// on MAS programs 1-20 (the paper plots log-scale seconds; we print
// milliseconds). Expected shape: end/stage cheapest; Algorithms 1 and 2
// pay for provenance construction and solving/traversal.
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "repair/repair_engine.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

int Main() {
  MasData mas = BenchMas();
  PrintHeader("Figure 7: execution time, MAS programs 1-20");
  BenchReporter reporter("bench_fig7_mas_runtime");
  TablePrinter table({"Program", "End", "Stage", "Step(Alg2)", "Ind(Alg1)",
                      "|End| result"});
  double sum_end = 0, sum_stage = 0, sum_step = 0, sum_ind = 0;
  for (int num : AllMasPrograms()) {
    Database db = mas.db;
    StatusOr<RepairEngine> engine =
        RepairEngine::Create(&db, MasProgram(num, mas.hubs));
    if (!engine.ok()) continue;
    std::vector<RepairOutcome> outcomes = engine->RunBatch(
        {RepairRequest{"end"}, RepairRequest{"stage"}, RepairRequest{"step"},
         RepairRequest{"independent"}});
    const RepairResult& end = outcomes[0].result;
    const RepairResult& stage = outcomes[1].result;
    const RepairResult& step = outcomes[2].result;
    const RepairResult& ind = outcomes[3].result;
    sum_end += end.stats.total_seconds;
    sum_stage += stage.stats.total_seconds;
    sum_step += step.stats.total_seconds;
    sum_ind += ind.stats.total_seconds;
    reporter.AddRow("program_" + std::to_string(num))
        .Metric("end_seconds", end.stats.total_seconds)
        .Metric("stage_seconds", stage.stats.total_seconds)
        .Metric("step_seconds", step.stats.total_seconds)
        .Metric("independent_seconds", ind.stats.total_seconds)
        .Metric("end_deleted", static_cast<int64_t>(end.size()));
    table.AddRow({std::to_string(num), Ms(end.stats.total_seconds),
                  Ms(stage.stats.total_seconds), Ms(step.stats.total_seconds),
                  Ms(ind.stats.total_seconds), std::to_string(end.size())});
  }
  table.Print();
  std::printf("\naverage: end=%s stage=%s step=%s independent=%s\n",
              Ms(sum_end / 20).c_str(), Ms(sum_stage / 20).c_str(),
              Ms(sum_step / 20).c_str(), Ms(sum_ind / 20).c_str());
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
