// Reproduces Table 5: per-DC counts of tuples still violating each denial
// constraint after/before repair, for HoloClean (cell repairs; residual
// violations remain) versus our semantics (tuple deletions; always zero
// residual violations, Prop. 3.18).
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "holoclean/holoclean.h"
#include "repair/repair_engine.h"
#include "workload/error_injector.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

int Main() {
  const size_t rows = static_cast<size_t>(5000 * BenchScale());
  PrintHeader(
      StrFormat("Table 5: violating tuples after/before repair (%zu rows)",
                rows));
  std::vector<DenialConstraint> dcs = AuthorDenialConstraints();
  Program dc_program = DcsToProgram(dcs, DcTranslation::kRulePerAtom);
  TablePrinter table({"Errors", "DC1", "DC2", "DC3", "DC4",
                      "HoloClean Total", "Semantics Total"});

  for (size_t base_errors : {100, 200, 300, 500, 700, 1000}) {
    const size_t errors = ScaledErrors(base_errors, rows);
    ErrorInjectorConfig config;
    config.num_rows = rows;
    config.num_errors = errors;
    InjectedTable injected = MakeInjectedAuthorTable(config);
    Database db = injected.MakeDb();

    // Violations before repair.
    std::vector<size_t> before;
    size_t before_total = 0;
    for (const auto& dc : dcs) {
      before.push_back(CountViolations(&db, dc).violating_tuples);
      before_total += before.back();
    }

    // HoloClean repair, then re-count per DC.
    HoloCleanReport hc = RunHoloClean(&db, "Author", dcs);
    Database hc_db = MakeSingleTableDb(injected.schema, hc.rows);
    std::vector<size_t> after;
    size_t after_total = 0;
    for (const auto& dc : dcs) {
      after.push_back(CountViolations(&hc_db, dc).violating_tuples);
      after_total += after.back();
    }

    // Our semantics: apply independent semantics (any of the four would
    // do — all stabilize) and verify zero residual violations.
    StatusOr<RepairEngine> engine = RepairEngine::Create(&db, dc_program);
    if (!engine.ok()) return 1;
    engine->RunAndApply(SemanticsKind::kIndependent);
    size_t ours_total = 0;
    for (const auto& dc : dcs) {
      ours_total += CountViolations(&db, dc).violating_tuples;
    }

    table.AddRow({std::to_string(errors),
                  StrFormat("%zu/%zu", after[0], before[0]),
                  StrFormat("%zu/%zu", after[1], before[1]),
                  StrFormat("%zu/%zu", after[2], before[2]),
                  StrFormat("%zu/%zu", after[3], before[3]),
                  StrFormat("%zu/%zu", after_total, before_total),
                  StrFormat("%zu/%zu", ours_total, before_total)});
  }
  table.Print();
  std::printf(
      "\npaper shape: HoloClean leaves residual violations (growing with "
      "error count); every delta-rule semantics ends at 0 violations.\n");
  return 0;
}

}  // namespace
}  // namespace deltarepair

int main() { return deltarepair::Main(); }
